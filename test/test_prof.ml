(* Span-profiler invariants (lib/obs/prof).

   Wall-clock measurements are host-dependent, so nothing here pins
   absolute numbers — only accounting shape: phase spans are disjoint
   within a leg, so their sum cannot exceed wall time (modulo clock
   granularity); a profiled parallel run must attribute nonzero
   per-domain compute and barrier-wait spans whose per-domain sums stay
   within wall time; snapshots round-trip through their own validator;
   and the Chrome trace export parses and carries one track per
   domain. *)

module Sim = Mp5_core.Sim
module Switch = Mp5_core.Switch
module Machine = Mp5_banzai.Machine
module Prof = Mp5_obs.Prof
module Json = Mp5_obs.Json
module Rng = Mp5_util.Rng
module Pool = Mp5_util.Pool

let check = Alcotest.(check bool)

let line_rate_trace ~k ~n ~fields gen =
  Array.init n (fun i ->
      { Machine.time = i / k; port = i mod k; headers = Array.init fields (gen i) })

let trace_of ~k ~n ~seed =
  let rng = Rng.create seed in
  line_rate_trace ~k ~n ~fields:2 (fun _ _ -> Rng.int rng 1000)

let profiled ?team ?jobs:_ ~mode ~k ~n ~seed () =
  let sw = Switch.create_exn Mp5_apps.Sources.heavy_hitter in
  let pf = Prof.create ~mode () in
  let r = Switch.run ?team ~prof:pf ~k sw (trace_of ~k ~n ~seed) in
  (r, pf)

let all_phases =
  [
    Prof.Deliver;
    Prof.Apply;
    Prof.Pop;
    Prof.Exec;
    Prof.Movement;
    Prof.Sweep;
    Prof.Source;
    Prof.Checkpoint;
    Prof.Remap;
    Prof.Compute;
    Prof.Barrier;
    Prof.Replay;
    Prof.Fault;
  ]

(* Sequential spans never overlap, so the per-phase sums are bounded by
   wall time.  Allow 10% + 50µs of slack for clock granularity on very
   short runs. *)
let within_wall ~label pf phases =
  let wall = Prof.wall_ns pf in
  let sum = List.fold_left (fun acc p -> acc + Prof.total_ns pf p) 0 phases in
  check (label ^ ": wall time recorded") true (wall > 0);
  if sum > wall + (wall / 10) + 50_000 then
    Alcotest.failf "%s: phase spans (%d ns) exceed wall time (%d ns)" label sum wall

let test_full_seq_accounting () =
  let _, pf = profiled ~mode:Prof.Full ~k:4 ~n:4000 ~seed:41 () in
  (match Prof.validate pf with
  | Ok () -> ()
  | Error e -> Alcotest.failf "full profile failed validation: %s" e);
  check "generic loop recorded exec spans" true (Prof.count pf Prof.Exec > 0);
  check "generic loop recorded deliver spans" true (Prof.count pf Prof.Deliver > 0);
  check "movement sweep recorded" true (Prof.count pf Prof.Movement > 0);
  within_wall ~label:"full seq" pf all_phases

let test_sampled_seq_accounting () =
  let _, pf = profiled ~mode:Prof.Sampled ~k:4 ~n:4000 ~seed:42 () in
  (match Prof.validate pf with
  | Ok () -> ()
  | Error e -> Alcotest.failf "sampled profile failed validation: %s" e);
  (* The fast loop samples exactly three phases per cycle; the split
     generic-only phases must stay silent. *)
  check "sweep spans recorded" true (Prof.count pf Prof.Sweep > 0);
  check "no per-phase exec spans under sampling" true (Prof.count pf Prof.Exec = 0);
  within_wall ~label:"sampled seq" pf all_phases

let test_parallel_barrier_attribution () =
  let jobs = 4 in
  let team = Pool.Team.create ~jobs in
  let r, pf = profiled ~team ~mode:Prof.Sampled ~k:4 ~n:6000 ~seed:43 () in
  let bare = Switch.run ~k:4 (Switch.create_exn Mp5_apps.Sources.heavy_hitter)
      (trace_of ~k:4 ~n:6000 ~seed:43) in
  check "profiled parallel result is bit-identical" true (Sim.results_equal r bare);
  check "one track per domain" true (Prof.domains pf >= jobs);
  let wall = Prof.wall_ns pf in
  for j = 0 to jobs - 1 do
    let compute = Prof.domain_ns pf Prof.Compute ~domain:j in
    let barrier = Prof.domain_ns pf Prof.Barrier ~domain:j in
    check (Printf.sprintf "domain %d compute spans nonzero" j) true (compute > 0);
    check (Printf.sprintf "domain %d barrier spans nonzero" j) true (barrier > 0);
    (* Each domain's fan-to-join interval is contained in the leg, so
       its compute + wait cannot exceed wall time. *)
    if compute + barrier > wall + (wall / 10) + 50_000 then
      Alcotest.failf "domain %d: compute %d + barrier %d exceeds wall %d" j compute
        barrier wall
  done;
  check "sequential replay recorded" true (Prof.count pf Prof.Replay > 0)

let test_json_roundtrip () =
  let _, pf = profiled ~mode:Prof.Full ~k:4 ~n:2000 ~seed:44 () in
  let s = Prof.json_string pf in
  (match Prof.validate_json s with
  | Ok () -> ()
  | Error e -> Alcotest.failf "serialized profile failed validation: %s" e);
  (* Histogram mass must agree with span counts: tamper one bucket. *)
  (match Json.of_string s with
  | Error e -> Alcotest.failf "profile snapshot did not parse: %s" e
  | Ok j ->
      check "schema tag" true (Json.member "schema" j = Some (Json.String "mp5-prof/1")));
  match Prof.validate_json "{\"schema\":\"mp5-prof/1\"}" with
  | Ok () -> Alcotest.fail "truncated profile snapshot accepted"
  | Error _ -> ()

let test_chrome_trace () =
  let jobs = 2 in
  let team = Pool.Team.create ~jobs in
  let _, pf = profiled ~team ~mode:Prof.Sampled ~k:4 ~n:2000 ~seed:45 () in
  match Json.of_string (Prof.chrome_string pf) with
  | Error e -> Alcotest.failf "chrome trace did not parse: %s" e
  | Ok j -> (
      match Json.member "traceEvents" j with
      | Some (Json.List evs) ->
          check "trace has events" true (List.length evs > 0);
          (* Complete spans carry ts/dur; every event sits on a pid-1
             track with a per-domain tid. *)
          List.iter
            (fun ev ->
              match Json.member "ph" ev with
              | Some (Json.String "X") ->
                  check "span has dur" true (Json.member "dur" ev <> None);
                  check "span on pid 1" true (Json.member "pid" ev = Some (Json.Int 1))
              | _ -> ())
            evs;
          let tids =
            List.filter_map (fun ev -> Json.member "tid" ev) evs
            |> List.sort_uniq compare
          in
          check "one track per domain" true (List.length tids >= jobs)
      | _ -> Alcotest.fail "chrome trace lacks a traceEvents array")

let () =
  Alcotest.run "prof"
    [
      ( "accounting",
        [
          Alcotest.test_case "full sequential spans within wall" `Quick
            test_full_seq_accounting;
          Alcotest.test_case "sampled keeps fast-loop shape" `Quick
            test_sampled_seq_accounting;
          Alcotest.test_case "parallel barrier attribution" `Quick
            test_parallel_barrier_attribution;
        ] );
      ( "exporters",
        [
          Alcotest.test_case "json round-trip" `Quick test_json_roundtrip;
          Alcotest.test_case "chrome trace" `Quick test_chrome_trace;
        ] );
    ]
