(* Unit tests for the Domino parser: precedence, statements, declarations,
   error reporting. *)

open Mp5_domino

let check = Alcotest.(check bool)

(* Strip locations for structural comparison. *)
let rec skel (e : Ast.expr) =
  match e.Ast.e with
  | Ast.Int n -> Printf.sprintf "%d" n
  | Ast.Packet_field q -> q
  | Ast.Var v -> v
  | Ast.Reg_read (r, None) -> r
  | Ast.Reg_read (r, Some i) -> Printf.sprintf "%s[%s]" r (skel i)
  | Ast.Binop (op, a, b) ->
      let name =
        match op with
        | Ast.Add -> "+" | Ast.Sub -> "-" | Ast.Mul -> "*" | Ast.Div -> "/" | Ast.Mod -> "%"
        | Ast.Bit_and -> "&" | Ast.Bit_or -> "|" | Ast.Bit_xor -> "^"
        | Ast.Shl -> "<<" | Ast.Shr -> ">>"
        | Ast.Eq -> "==" | Ast.Ne -> "!=" | Ast.Lt -> "<" | Ast.Le -> "<=" | Ast.Gt -> ">"
        | Ast.Ge -> ">=" | Ast.Log_and -> "&&" | Ast.Log_or -> "||"
      in
      Printf.sprintf "(%s%s%s)" (skel a) name (skel b)
  | Ast.Unop (Ast.Neg, a) -> Printf.sprintf "(-%s)" (skel a)
  | Ast.Unop (Ast.Log_not, a) -> Printf.sprintf "(!%s)" (skel a)
  | Ast.Unop (Ast.Bit_not, a) -> Printf.sprintf "(~%s)" (skel a)
  | Ast.Ternary (c, a, b) -> Printf.sprintf "(%s?%s:%s)" (skel c) (skel a) (skel b)
  | Ast.Hash args -> Printf.sprintf "hash(%s)" (String.concat "," (List.map skel args))
  | Ast.Table_call (name, args) ->
      Printf.sprintf "%s(%s)" name (String.concat "," (List.map skel args))

let expr src = skel (Parser.parse_expr_string src)
let check_expr name src expected = Alcotest.(check string) name expected (expr src)

let test_precedence () =
  check_expr "mul over add" "1 + 2 * 3" "(1+(2*3))";
  check_expr "left assoc" "1 - 2 - 3" "((1-2)-3)";
  check_expr "shift under relational" "1 << 2 < 3" "((1<<2)<3)";
  check_expr "relational under equality" "a < b == c" "((a<b)==c)";
  check_expr "bitand under xor" "a ^ b & c" "(a^(b&c))";
  check_expr "xor under or" "a | b ^ c" "(a|(b^c))";
  check_expr "and over or" "a || b && c" "(a||(b&&c))";
  check_expr "parens override" "(1 + 2) * 3" "((1+2)*3)"

let test_unary () =
  check_expr "neg" "-x" "(-x)";
  check_expr "double neg" "- -x" "(-(-x))";
  check_expr "not" "!x && y" "((!x)&&y)";
  check_expr "bitnot binds tight" "~x + 1" "((~x)+1)"

let test_ternary () =
  check_expr "ternary" "a ? b : c" "(a?b:c)";
  check_expr "nested ternary right assoc" "a ? b : c ? d : e" "(a?b:(c?d:e))";
  check_expr "condition precedence" "a == 1 ? b : c" "((a==1)?b:c)"

let test_postfix () =
  check_expr "packet field" "p.h1 + 1" "(p.h1+1)";
  check_expr "register index" "reg[p.h1 % 4]" "reg[(p.h1%4)]";
  check_expr "hash call" "hash(p.a, p.b) % 8" "(hash(p.a,p.b)%8)"

let parse_ok src = ignore (Parser.parse src)

let parse_err src =
  match Parser.parse src with
  | exception Parser.Error _ -> ()
  | exception Lexer.Error _ -> ()
  | _ -> Alcotest.failf "expected parse error for %s" src

let minimal body =
  Printf.sprintf
    "struct Packet { int x; };\nint r[4];\nvoid func(struct Packet p) { %s }" body

let test_program_structure () =
  parse_ok (minimal "p.x = 1;");
  let prog = Parser.parse (minimal "p.x = 1;") in
  check "one field" true (List.map fst prog.Ast.packet_fields = [ "x" ]);
  check "one reg" true
    (match prog.Ast.regs with [ r ] -> r.Ast.r_name = "r" && r.Ast.r_size = Some 4 | _ -> false);
  check "param name" true (prog.Ast.param = "p");
  check "func name" true (prog.Ast.func_name = "func")

let test_reg_decls () =
  let prog =
    Parser.parse
      "struct Packet { int x; };\nint a;\nint b[2] = {1, 2};\nint c = 5;\nint d[3] = {-1};\n\
       void func(struct Packet p) { p.x = 1; }"
  in
  let decls = List.map (fun (r : Ast.reg_decl) -> (r.Ast.r_name, r.Ast.r_size, r.Ast.r_init)) prog.Ast.regs in
  check "scalar" true (List.nth decls 0 = ("a", None, []));
  check "array with init" true (List.nth decls 1 = ("b", Some 2, [ 1; 2 ]));
  check "scalar with init" true (List.nth decls 2 = ("c", None, [ 5 ]));
  check "negative init" true (List.nth decls 3 = ("d", Some 3, [ -1 ]))

let test_if_else () =
  let prog = Parser.parse (minimal "if (p.x) { p.x = 1; } else p.x = 2;") in
  (match prog.Ast.body with
  | [ { Ast.s = Ast.If (_, [ _ ], [ _ ]); _ } ] -> ()
  | _ -> Alcotest.fail "expected if with both branches");
  let prog2 = Parser.parse (minimal "if (p.x) p.x = 1;") in
  match prog2.Ast.body with
  | [ { Ast.s = Ast.If (_, [ _ ], []); _ } ] -> ()
  | _ -> Alcotest.fail "expected if without else"

let test_dangling_else () =
  let prog = Parser.parse (minimal "if (p.x) if (p.x) p.x = 1; else p.x = 2;") in
  match prog.Ast.body with
  | [ { Ast.s = Ast.If (_, [ { Ast.s = Ast.If (_, _, [ _ ]); _ } ], []); _ } ] -> ()
  | _ -> Alcotest.fail "else must bind to the inner if"

let test_local_decls () =
  let prog = Parser.parse (minimal "int t = p.x + 1; p.x = t;") in
  match prog.Ast.body with
  | [ { Ast.s = Ast.Local_decl ("t", Some _); _ }; _ ] -> ()
  | _ -> Alcotest.fail "expected local declaration with initializer"

let test_errors () =
  parse_err "struct Thing { int x; }; void func(struct Packet p) {}";
  parse_err (minimal "p.x = ;");
  parse_err (minimal "p.x = 1");
  parse_err (minimal "if p.x { }");
  parse_err "struct Packet { int x; }; void func(struct Packet p) { p.x = 1; } extra";
  parse_err "struct Packet { int x; };"

let test_error_location () =
  try
    ignore (Parser.parse (minimal "p.x = ;"))
  with Parser.Error (msg, loc) ->
    check "mentions expression" true
      (String.length msg > 0 && loc.Ast.line >= 1)

let () =
  Alcotest.run "parser"
    [
      ( "expressions",
        [
          Alcotest.test_case "precedence" `Quick test_precedence;
          Alcotest.test_case "unary" `Quick test_unary;
          Alcotest.test_case "ternary" `Quick test_ternary;
          Alcotest.test_case "postfix forms" `Quick test_postfix;
        ] );
      ( "programs",
        [
          Alcotest.test_case "structure" `Quick test_program_structure;
          Alcotest.test_case "register declarations" `Quick test_reg_decls;
          Alcotest.test_case "if/else" `Quick test_if_else;
          Alcotest.test_case "dangling else" `Quick test_dangling_else;
          Alcotest.test_case "local declarations" `Quick test_local_decls;
          Alcotest.test_case "errors" `Quick test_errors;
          Alcotest.test_case "error locations" `Quick test_error_location;
        ] );
    ]
