(* Unit tests for the kernel-compilation layer: compiled closures
   ([Expr.compile], [Atom.compile_stateless], [Atom.compile_stateful])
   must be bit-identical to the AST interpreter they replace — same
   values, same side effects, and the same [Invalid_argument] exceptions
   with the same messages, raised lazily at call time.

   The random sweeps here are intra-module (expression/atom granularity);
   whole-simulator equivalence over generated programs lives in
   test_differential.ml. *)

module Expr = Mp5_banzai.Expr
module Table = Mp5_banzai.Table
module Atom = Mp5_banzai.Atom
module Rng = Mp5_util.Rng

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

(* --- fixtures ------------------------------------------------------ *)

let n_fields = 6

let tables =
  let t0 = Table.create ~name:"t0" ~arity:1 ~default_action:7 () in
  let t0 = Table.add_exact t0 ~key:[ 3 ] ~action:30 () in
  let t0 = Table.add_exact t0 ~key:[ 5 ] ~action:50 () in
  let t1 = Table.create ~name:"t1" ~arity:2 ~default_action:0 () in
  let t1 = Table.add_exact t1 ~key:[ 1; 2 ] ~action:12 () in
  [| t0; t1 |]

let random_fields rng =
  Array.init n_fields (fun _ ->
      match Rng.int rng 5 with
      | 0 -> 0
      | 1 -> Rng.int rng 8
      | 2 -> -Rng.int rng 8
      | 3 -> Expr.norm32 (Int32.to_int Int32.max_int - Rng.int rng 3)
      | _ -> Expr.norm32 (Rng.int rng 1_000_000 - 500_000))

(* Random expression generator.  [state] allows [State_val] leaves. *)
let binops =
  [| Expr.Add; Sub; Mul; Div; Mod; Bit_and; Bit_or; Bit_xor; Shl; Shr;
     Eq; Ne; Lt; Le; Gt; Ge; Log_and; Log_or |]

let unops = [| Expr.Neg; Log_not; Bit_not |]

let rec random_expr rng ~state depth =
  if depth = 0 then random_leaf rng ~state
  else
    match Rng.int rng 10 with
    | 0 | 1 -> random_leaf rng ~state
    | 2 | 3 | 4 | 5 ->
        Expr.Binop
          ( Rng.pick rng binops,
            random_expr rng ~state (depth - 1),
            random_expr rng ~state (depth - 1) )
    | 6 -> Expr.Unop (Rng.pick rng unops, random_expr rng ~state (depth - 1))
    | 7 ->
        Expr.Ternary
          ( random_expr rng ~state (depth - 1),
            random_expr rng ~state (depth - 1),
            random_expr rng ~state (depth - 1) )
    | 8 ->
        let arity = 1 + Rng.int rng 3 in
        Expr.Hash (List.init arity (fun _ -> random_expr rng ~state (depth - 1)))
    | _ ->
        let id = Rng.int rng (Array.length tables) in
        let arity = Table.arity tables.(id) in
        Expr.Lookup (id, List.init arity (fun _ -> random_expr rng ~state (depth - 1)))

and random_leaf rng ~state =
  match Rng.int rng (if state then 4 else 3) with
  | 0 -> Expr.Field (Rng.int rng n_fields)
  | 1 -> Expr.Const (Rng.int rng 16 - 4)
  | 2 -> Expr.Const (Expr.norm32 (Int64.to_int (Rng.int64 rng)))
  | _ -> Expr.State_val

(* --- interpreter/compiler comparison ------------------------------- *)

let outcome f = match f () with v -> Ok v | exception Invalid_argument m -> Error m

let pp_outcome = function
  | Ok v -> string_of_int v
  | Error m -> "Invalid_argument: " ^ m

(* Both engines on the same expression: same value or same exception. *)
let assert_same ?(tables = tables) ~fields ~state e =
  let interp = outcome (fun () -> Expr.eval_raw tables fields state e) in
  let cell = Option.map ref state in
  let compiled =
    match outcome (fun () -> Expr.compile tables ~state:cell e) with
    | Ok k -> outcome (fun () -> k (Expr.frame_of_array fields))
    | Error m -> Error m
  in
  if interp <> compiled then
    Alcotest.failf "engines disagree on %a:@ interp=%s compiled=%s" Expr.pp e
      (pp_outcome interp) (pp_outcome compiled)

let test_random_exprs () =
  let rng = Rng.create 0xbead in
  for _ = 1 to 600 do
    let e = random_expr rng ~state:false (1 + Rng.int rng 4) in
    let fields = random_fields rng in
    assert_same ~fields ~state:None e
  done

let test_random_exprs_with_state () =
  let rng = Rng.create 0xfeed in
  for _ = 1 to 600 do
    let e = random_expr rng ~state:true (1 + Rng.int rng 4) in
    let fields = random_fields rng in
    let state = Some (Expr.norm32 (Rng.int rng 1_000_000 - 500_000)) in
    assert_same ~fields ~state e
  done

(* Edge cases the random sweep is unlikely to pin down exactly. *)
let test_division_by_zero () =
  let fields = [| 0; 7; -7; 1; 0; 0 |] in
  List.iter
    (fun e -> assert_same ~fields ~state:None e)
    [
      Expr.Binop (Div, Const 42, Const 0);
      Expr.Binop (Mod, Const 42, Const 0);
      Expr.Binop (Div, Field 1, Field 0);    (* non-constant zero divisor *)
      Expr.Binop (Mod, Field 2, Field 0);
      Expr.Binop (Div, Const 0, Field 1);
      Expr.Binop (Mod, Const min_int, Const (-1));
    ]

let test_shift_masking () =
  let fields = [| 1; 31; 32; 33; -1; 64 |] in
  List.iter
    (fun shift ->
      let fields = Array.copy fields in
      List.iter
        (fun e -> assert_same ~fields ~state:None e)
        [
          Expr.Binop (Shl, Field 0, Const shift);
          Expr.Binop (Shr, Const (-8), Const shift);
          Expr.Binop (Shl, Field 0, Field 3);
          Expr.Binop (Shr, Field 4, Field 2);
        ])
    [ 0; 1; 31; 32; 33; 63; -1 ]

(* Short-circuit parity: the untaken right arm contains a subexpression
   that raises, so any engine that evaluates it eagerly fails loudly. *)
let test_short_circuit () =
  let raising = Expr.Field 999 in
  let fields = [| 0; 1; 0; 0; 0; 0 |] in
  (* left decides: no raise, identical value *)
  assert_same ~fields ~state:None (Binop (Log_and, Const 0, raising));
  assert_same ~fields ~state:None (Binop (Log_and, Field 0, raising));
  assert_same ~fields ~state:None (Binop (Log_or, Const 3, raising));
  assert_same ~fields ~state:None (Binop (Log_or, Field 1, raising));
  (* left does not decide: both engines raise the same error *)
  assert_same ~fields ~state:None (Binop (Log_and, Field 1, raising));
  assert_same ~fields ~state:None (Binop (Log_or, Field 0, raising));
  (* truthiness of the decided result is still normalised to 0/1 *)
  assert_same ~fields ~state:None (Binop (Log_and, Const 5, Const (-3)));
  assert_same ~fields ~state:None (Binop (Log_or, Const 0, Const 9))

let test_state_val_errors () =
  let fields = [| 0; 0; 0; 0; 0; 0 |] in
  (* reached State_val without a cell: same Invalid_argument both ways *)
  assert_same ~fields ~state:None Expr.State_val;
  assert_same ~fields ~state:None (Binop (Add, Const 1, State_val));
  (* constant-folded condition drops the State_val branch entirely *)
  assert_same ~fields ~state:None (Ternary (Const 0, State_val, Const 7));
  assert_same ~fields ~state:None (Ternary (Const 1, Const 7, State_val));
  (* with a cell present both read the same value *)
  assert_same ~fields ~state:(Some 123) (Binop (Mul, State_val, Const 2))

let test_hash_and_lookup () =
  let fields = [| 3; 5; 1; 2; 9; 0 |] in
  List.iter
    (fun e -> assert_same ~fields ~state:None e)
    [
      Expr.Hash [ Field 0 ];
      Expr.Hash [ Field 0; Field 1 ];
      Expr.Hash [ Field 0; Field 1; Field 4 ];
      Expr.Hash [ Const (-1) ];
      Expr.Lookup (0, [ Field 0 ]);        (* hit: key 3 *)
      Expr.Lookup (0, [ Field 4 ]);        (* miss -> default action *)
      Expr.Lookup (1, [ Field 2; Field 3 ]);
      Expr.Lookup (99, [ Field 0 ]);       (* out-of-range table id raises *)
    ]

(* --- atoms --------------------------------------------------------- *)

let random_stateless rng =
  Atom.stateless_op ~dst:(Rng.int rng n_fields)
    ~rhs:(random_expr rng ~state:false (1 + Rng.int rng 3))

let test_stateless_parity () =
  let rng = Rng.create 0x5151 in
  for _ = 1 to 400 do
    let op = random_stateless rng in
    let base = random_fields rng in
    let fa = Array.copy base and fb = Array.copy base in
    let interp = outcome (fun () -> Atom.exec_stateless ~tables ~fields:fa op) in
    let compiled =
      match outcome (fun () -> Atom.compile_stateless ~tables op) with
      | Ok k -> outcome (fun () -> k (Expr.frame_of_array fb))
      | Error m -> Error m
    in
    check "same outcome" true
      ((match (interp, compiled) with
       | Ok (), Ok () -> true
       | Error a, Error b -> a = b
       | _ -> false)
      && fa = fb)
  done

let random_stateful rng =
  let opt f = if Rng.bool rng then Some (f ()) else None in
  Atom.stateful ~reg:0
    ~index:(random_expr rng ~state:false (1 + Rng.int rng 2))
    ?guard:(opt (fun () -> random_expr rng ~state:false (1 + Rng.int rng 2)))
    ?update:(opt (fun () -> random_expr rng ~state:true (1 + Rng.int rng 2)))
    ~outputs:
      (List.init (Rng.int rng 3) (fun _ ->
           (Rng.int rng n_fields, if Rng.bool rng then Atom.Old_value else Atom.New_value)))
    ()

let test_stateful_parity () =
  let rng = Rng.create 0xa70 in
  for _ = 1 to 400 do
    let atom = random_stateful rng in
    let base_fields = random_fields rng in
    let size = 1 + Rng.int rng 16 in
    let base_reg = Array.init size (fun _ -> Rng.int rng 100 - 50) in
    let fa = Array.copy base_fields and fb = Array.copy base_fields in
    let ra = Array.copy base_reg and rb = Array.copy base_reg in
    let r = Atom.exec_stateful ~tables ~fields:fa ~reg_array:ra atom in
    let k = Atom.compile_stateful ~tables atom in
    let cell = k (Expr.frame_of_array fb) rb (-1) in
    check_int "returned cell" (if r.Atom.accessed then r.Atom.cell else -1) cell;
    check "fields identical" true (fa = fb);
    check "registers identical" true (ra = rb)
  done

(* The simulator passes the arrival-resolved cell as a hint; the hinted
   call must behave exactly like the recomputing one. *)
let test_stateful_cell_hint () =
  let rng = Rng.create 0xce11 in
  for _ = 1 to 400 do
    let atom = random_stateful rng in
    let base_fields = random_fields rng in
    let size = 1 + Rng.int rng 16 in
    let base_reg = Array.init size (fun _ -> Rng.int rng 100 - 50) in
    let hint = Atom.resolve_index ~tables ~fields:base_fields ~size atom in
    let k = Atom.compile_stateful ~tables atom in
    let fa = Array.copy base_fields and fb = Array.copy base_fields in
    let ra = Array.copy base_reg and rb = Array.copy base_reg in
    let ca = k (Expr.frame_of_array fa) ra (-1) in
    let cb = k (Expr.frame_of_array fb) rb hint in
    check_int "same cell" ca cb;
    check "fields identical" true (fa = fb);
    check "registers identical" true (ra = rb)
  done

let () =
  Alcotest.run "kernel"
    [
      ( "expr",
        [
          Alcotest.test_case "random exprs, stateless" `Quick test_random_exprs;
          Alcotest.test_case "random exprs, with state" `Quick test_random_exprs_with_state;
          Alcotest.test_case "division by zero" `Quick test_division_by_zero;
          Alcotest.test_case "shift masking" `Quick test_shift_masking;
          Alcotest.test_case "short circuit" `Quick test_short_circuit;
          Alcotest.test_case "state_val errors" `Quick test_state_val_errors;
          Alcotest.test_case "hash and lookup" `Quick test_hash_and_lookup;
        ] );
      ( "atom",
        [
          Alcotest.test_case "stateless parity" `Quick test_stateless_parity;
          Alcotest.test_case "stateful parity" `Quick test_stateful_parity;
          Alcotest.test_case "cell hint" `Quick test_stateful_cell_hint;
        ] );
    ]
