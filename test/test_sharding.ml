(* Tests for the dynamic sharding heuristic (Figure 6) and the LPT
   ideal packer. *)

module Index_map = Mp5_core.Index_map
module Sharding = Mp5_core.Sharding
module Store = Mp5_banzai.Store
module Config = Mp5_banzai.Config

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let mk ?(k = 2) ?(size = 8) () =
  Index_map.create ~k ~reg:0 ~size ~sharded:true ~pinned_to:0 ~init:`Round_robin

(* Load cells with explicit counts. *)
let load m counts = Array.iteri (fun cell c -> for _ = 1 to c do Index_map.note_access m cell done) counts

let test_remap_moves_from_hot_to_cold () =
  let m = mk () in
  (* p0 holds cells 0,2,4,6; p1 holds 1,3,5,7.  Make p0 very hot with one
     dominant cell and a movable lighter one. *)
  load m [| 100; 1; 30; 0; 0; 0; 0; 0 |];
  (match Sharding.remap_step m with
  | Some mv ->
      check_int "from hot" 0 mv.Sharding.from_;
      check_int "to cold" 1 mv.Sharding.to_;
      (* C = (131-1)/2 = 65: cell 2 (count 30) is the largest below C. *)
      check_int "heaviest below threshold" 2 mv.Sharding.cell
  | None -> Alcotest.fail "expected a move")

let test_remap_skips_dominant_cell () =
  let m = mk () in
  (* Only one cell carries all the load: it exceeds C = total/2, so the
     heuristic cannot move it — only a light sibling (a fundamental limit
     of per-cell sharding, §3.5.2). *)
  load m [| 100; 0; 0; 0; 0; 0; 0; 0 |];
  match Sharding.remap_step m with
  | Some mv -> check "dominant cell stays" true (mv.Sharding.cell <> 0)
  | None -> ()

let test_remap_respects_inflight () =
  let m = mk () in
  load m [| 100; 1; 30; 0; 0; 0; 0; 0 |];
  Index_map.incr_inflight m 2;
  (match Sharding.remap_step m with
  | Some mv -> check "skips in-flight cell 2" true (mv.Sharding.cell <> 2)
  | None -> ());
  Index_map.decr_inflight m 2;
  match Sharding.remap_step m with
  | Some mv -> check_int "eligible again" 2 mv.Sharding.cell
  | None -> Alcotest.fail "expected a move after release"

let test_remap_idles_when_balanced () =
  let m = mk () in
  load m [| 10; 10; 10; 10; 10; 10; 10; 10 |];
  check "balanced = no move" true (Sharding.remap_step m = None)

let test_remap_idles_within_noise () =
  let m = mk () in
  (* 42 vs 38: inside 3*sqrt(avg) of 40. *)
  load m [| 12; 10; 10; 10; 10; 8; 10; 10 |];
  check "noise gate" true (Sharding.remap_step m = None)

let test_remap_verbatim_without_gate () =
  let m = mk () in
  (* p0 = 18, p1 = 38: the gap (20) is inside the 3-sigma band of the
     mean load (28), so the gated heuristic idles; Figure 6 verbatim has
     no such gate and moves cell 3 (count 8 < C = 10) from p1 to p0. *)
  load m [| 15; 10; 3; 8; 0; 10; 0; 10 |];
  check "gated idles" true (Sharding.remap_step m = None);
  match Sharding.remap_step ~noise_gate:false m with
  | Some mv ->
      check_int "verbatim moves from hot pipeline" 1 mv.Sharding.from_;
      check_int "largest eligible cell" 3 mv.Sharding.cell
  | None -> Alcotest.fail "verbatim heuristic should move"

let test_remap_pinned_array () =
  let m = Index_map.create ~k:2 ~reg:0 ~size:4 ~sharded:false ~pinned_to:0 ~init:`Round_robin in
  check "pinned never remaps" true (Sharding.remap_step m = None)

let test_lpt_balances () =
  let m = mk ~k:2 ~size:4 () in
  (* All four cells on... round robin puts 0,2 on p0 and 1,3 on p1; give
     p0 overwhelming load. *)
  load m [| 50; 1; 40; 1 |];
  let moves = Sharding.lpt_remap m in
  check "produces moves" true (moves <> []);
  List.iter (fun mv -> Index_map.move m ~cell:mv.Sharding.cell ~to_:mv.Sharding.to_) moves;
  let after = Index_map.per_pipeline_load m in
  check "balanced after" true (abs (after.(0) - after.(1)) <= 10)

let test_lpt_hysteresis () =
  let m = mk ~k:2 ~size:4 () in
  load m [| 10; 10; 10; 10 |];
  check "balanced input untouched" true (Sharding.lpt_remap m = [])

let test_lpt_respects_inflight () =
  let m = mk ~k:2 ~size:4 () in
  load m [| 50; 1; 40; 1 |];
  Index_map.incr_inflight m 0;
  let moves = Sharding.lpt_remap m in
  check "cell 0 stays" true (List.for_all (fun mv -> mv.Sharding.cell <> 0) moves)

let test_apply_moves_register_value () =
  let config =
    {
      Config.fields = [| "x" |];
      n_user_fields = 1;
      regs = [| Config.reg ~name:"r" ~size:4 () |];
      tables = [||];
      stages = [||];
    }
  in
  let stores = [| Store.create config; Store.create config |] in
  Store.set stores.(0) ~reg:0 ~idx:2 77;
  let m = mk ~k:2 ~size:4 () in
  Sharding.apply m ~stores ~reg:0 { Sharding.cell = 2; from_ = 0; to_ = 1 };
  check_int "value copied" 77 (Store.get stores.(1) ~reg:0 ~idx:2);
  check_int "map updated" 1 (Index_map.pipeline_of m 2)

(* --- property: remaps never break flow affinity, even under faults ---

   Across 100 seeded random fault plans (pipelines dying and recovering,
   stalls, crossbar drop/duplication, FIFO losses, phantom delays), the
   runtime monitor's affinity check — every FIFO-resident stateful
   packet sits at the pipeline that currently holds its cell — must stay
   green.  This covers the ordinary Figure-6 moves, the LPT packer, and
   the fault-triggered mass evacuations in one oracle. *)

module Rng = Mp5_util.Rng
module Switch = Mp5_core.Switch
module Tracegen = Mp5_workload.Tracegen
module Fault = Mp5_fault.Fault
module Monitor = Mp5_fault.Monitor

let random_plan rng seed =
  let b = Buffer.create 128 in
  let add fmt = Printf.ksprintf (Buffer.add_string b) fmt in
  add "seed %d" seed;
  (* Always one pipeline-down episode: that is the mass-migration case
     the property is really about. *)
  let pipe = Rng.int rng 4 in
  let down_at = 100 + Rng.int rng 400 in
  add "; down @%d pipe=%d" down_at pipe;
  if Rng.bool rng then add "; up @%d pipe=%d" (down_at + 200 + Rng.int rng 800) pipe;
  if Rng.bool rng then begin
    let a = 50 + Rng.int rng 400 in
    add "; stall @%d..%d stage=%d pipe=%d" a
      (a + 50 + Rng.int rng 200)
      (Rng.int rng 4)
      ((pipe + 1) mod 4)
  end;
  if Rng.bool rng then
    add "; xbar-drop @%d..%d p=%.2f" (Rng.int rng 300) (400 + Rng.int rng 400)
      (0.01 +. (0.2 *. Rng.float rng 1.0));
  if Rng.bool rng then
    add "; xbar-dup @%d..%d p=%.2f" (Rng.int rng 300) (400 + Rng.int rng 400)
      (0.01 +. (0.1 *. Rng.float rng 1.0));
  if Rng.bool rng then add "; fifo-loss @%d stage=%d pipe=%d" (150 + Rng.int rng 300) (Rng.int rng 4) pipe;
  if Rng.bool rng then
    add "; phantom-delay @%d..%d extra=%d" (Rng.int rng 300) (350 + Rng.int rng 300)
      (1 + Rng.int rng 4);
  Buffer.contents b

let test_affinity_under_fault_plans () =
  let sw =
    Switch.create_exn ~pad_to_stages:16
      (Mp5_apps.Sources.sensitivity_program ~stateful:4 ~reg_size:64)
  in
  let rng = Rng.create 0xfa1 in
  for seed = 0 to 99 do
    let src = random_plan rng seed in
    let plan =
      match Fault.parse src with
      | Ok p -> p
      | Error e -> Alcotest.failf "seed %d: plan %S does not parse: %s" seed src e
    in
    let trace =
      Tracegen.sensitivity
        {
          Tracegen.n_packets = 1_200;
          k = 4;
          pkt_bytes = 64;
          n_fields = 6;
          index_fields = [ 0; 1; 2; 3 ];
          reg_size = 64;
          pattern = (if seed mod 2 = 0 then Tracegen.Skewed else Tracegen.Uniform);
          n_ports = 64;
          seed = 2000 + seed;
        }
    in
    let mon = Monitor.create () in
    (match Switch.run ~k:4 ~fault:plan ~monitor:mon sw trace with
    | _ -> ()
    | exception Monitor.Violation diag ->
        Alcotest.failf "seed %d: invariant violated under plan %S:\n%s" seed src diag);
    check "monitor ran" true (Monitor.checks mon > 0);
    check "zero violations" true (Monitor.ok mon)
  done

let () =
  Alcotest.run "sharding"
    [
      ( "figure-6 heuristic",
        [
          Alcotest.test_case "moves hot to cold" `Quick test_remap_moves_from_hot_to_cold;
          Alcotest.test_case "skips dominant cell" `Quick test_remap_skips_dominant_cell;
          Alcotest.test_case "respects in-flight" `Quick test_remap_respects_inflight;
          Alcotest.test_case "idles when balanced" `Quick test_remap_idles_when_balanced;
          Alcotest.test_case "idles within noise" `Quick test_remap_idles_within_noise;
          Alcotest.test_case "verbatim without gate" `Quick test_remap_verbatim_without_gate;
          Alcotest.test_case "pinned arrays" `Quick test_remap_pinned_array;
        ] );
      ( "lpt",
        [
          Alcotest.test_case "balances" `Quick test_lpt_balances;
          Alcotest.test_case "hysteresis" `Quick test_lpt_hysteresis;
          Alcotest.test_case "respects in-flight" `Quick test_lpt_respects_inflight;
          Alcotest.test_case "apply moves value" `Quick test_apply_moves_register_value;
        ] );
      ( "fault plans",
        [
          Alcotest.test_case "affinity holds across 100 seeded plans" `Quick
            test_affinity_under_fault_plans;
        ] );
    ]
