(* Unit tests for the Banzai expression IR: 32-bit wrap-around semantics,
   total division, short-circuit logic, analysis helpers. *)

module Expr = Mp5_banzai.Expr
open Expr

let eval ?(fields = [||]) ?state e = Expr.eval ~fields ~state e
let check_int = Alcotest.(check int)
let check = Alcotest.(check bool)

let test_const () =
  check_int "const" 42 (eval (Const 42));
  check_int "negative" (-7) (eval (Const (-7)))

let test_norm32 () =
  check_int "wraps positive" (-2147483648) (norm32 2147483648);
  check_int "wraps negative" 2147483647 (norm32 (-2147483649));
  check_int "id in range" 123 (norm32 123);
  check_int "id negative" (-123) (norm32 (-123))

let test_arith_wraparound () =
  check_int "add wraps" (-2147483648) (eval (Binop (Add, Const 2147483647, Const 1)));
  check_int "sub wraps" 2147483647 (eval (Binop (Sub, Const (-2147483648), Const 1)));
  check_int "mul wraps" 0 (eval (Binop (Mul, Const 65536, Const 65536)))

let test_div_mod_by_zero () =
  check_int "div by zero is 0" 0 (eval (Binop (Div, Const 7, Const 0)));
  check_int "mod by zero is 0" 0 (eval (Binop (Mod, Const 7, Const 0)));
  check_int "div" 3 (eval (Binop (Div, Const 7, Const 2)));
  check_int "mod" 1 (eval (Binop (Mod, Const 7, Const 2)));
  check_int "mod of negative" (-1) (eval (Binop (Mod, Const (-7), Const 2)))

let test_comparisons () =
  check_int "lt true" 1 (eval (Binop (Lt, Const 1, Const 2)));
  check_int "lt false" 0 (eval (Binop (Lt, Const 2, Const 1)));
  check_int "eq" 1 (eval (Binop (Eq, Const 5, Const 5)));
  check_int "ge" 1 (eval (Binop (Ge, Const 5, Const 5)))

let test_bitwise () =
  check_int "and" 0b100 (eval (Binop (Bit_and, Const 0b110, Const 0b101)));
  check_int "or" 0b111 (eval (Binop (Bit_or, Const 0b110, Const 0b101)));
  check_int "xor" 0b011 (eval (Binop (Bit_xor, Const 0b110, Const 0b101)));
  check_int "shl" 8 (eval (Binop (Shl, Const 1, Const 3)));
  check_int "shr" 2 (eval (Binop (Shr, Const 8, Const 2)));
  check_int "shift amount masked to 5 bits" 2 (eval (Binop (Shl, Const 1, Const 33)));
  check_int "bitnot" (-1) (eval (Unop (Bit_not, Const 0)))

let test_logical_short_circuit () =
  (* The right operand divides by zero; short-circuit must not matter for
     totality, but truthiness must be C-like. *)
  check_int "and false" 0 (eval (Binop (Log_and, Const 0, Const 9)));
  check_int "and true" 1 (eval (Binop (Log_and, Const 2, Const 9)));
  check_int "or true" 1 (eval (Binop (Log_or, Const 2, Const 0)));
  check_int "or false" 0 (eval (Binop (Log_or, Const 0, Const 0)));
  check_int "lognot" 1 (eval (Unop (Log_not, Const 0)));
  check_int "lognot nonzero" 0 (eval (Unop (Log_not, Const 5)))

let test_ternary_lazy () =
  check_int "then branch" 10 (eval (Ternary (Const 1, Const 10, Const 20)));
  check_int "else branch" 20 (eval (Ternary (Const 0, Const 10, Const 20)))

let test_fields () =
  let fields = [| 5; 6; 7 |] in
  check_int "field read" 6 (eval ~fields (Field 1));
  Alcotest.check_raises "out of range"
    (Invalid_argument "Expr.eval: field 3 out of range") (fun () ->
      ignore (eval ~fields (Field 3)))

let test_state_val () =
  check_int "state value" 99 (eval ~state:99 State_val);
  Alcotest.check_raises "state outside atom"
    (Invalid_argument "Expr.eval: State_val outside a stateful atom") (fun () ->
      ignore (Expr.eval ~fields:[||] ~state:None State_val))

let test_hash () =
  let h1 = eval (Hash [ Const 1; Const 2 ]) in
  let h2 = eval (Hash [ Const 1; Const 2 ]) in
  check_int "deterministic" h1 h2;
  check "non-negative" true (h1 >= 0);
  check "differs by input" true (h1 <> eval (Hash [ Const 2; Const 1 ]));
  check_int "matches Hashing.fnv1a" (Mp5_util.Hashing.fnv1a [ 1; 2 ] land 0x7FFFFFFF) h1

let test_uses_state () =
  check "const" false (uses_state (Const 1));
  check "state" true (uses_state State_val);
  check "nested" true (uses_state (Binop (Add, Const 1, Ternary (Const 1, State_val, Const 0))));
  check "hash without" false (uses_state (Hash [ Field 0 ]))

let test_fields_used () =
  Alcotest.(check (list int)) "sorted dedup" [ 0; 2; 5 ]
    (fields_used (Binop (Add, Field 5, Ternary (Field 0, Field 2, Field 0))));
  Alcotest.(check (list int)) "none" [] (fields_used (Const 3))

let test_depth_size () =
  check_int "leaf depth" 0 (depth (Const 1));
  check_int "binop depth" 1 (depth (Binop (Add, Const 1, Const 2)));
  check_int "nested depth" 2 (depth (Binop (Add, Binop (Mul, Const 1, Const 2), Const 3)));
  check_int "size" 5 (size (Binop (Add, Binop (Mul, Const 1, Const 2), Const 3)))

let test_pp () =
  let s = Format.asprintf "%a" pp (Ternary (Field 0, State_val, Const 3)) in
  check "prints something sensible" true (s = "(f0 ? $state : 3)")

let () =
  Alcotest.run "expr"
    [
      ( "eval",
        [
          Alcotest.test_case "const" `Quick test_const;
          Alcotest.test_case "norm32" `Quick test_norm32;
          Alcotest.test_case "wraparound" `Quick test_arith_wraparound;
          Alcotest.test_case "div/mod by zero" `Quick test_div_mod_by_zero;
          Alcotest.test_case "comparisons" `Quick test_comparisons;
          Alcotest.test_case "bitwise" `Quick test_bitwise;
          Alcotest.test_case "logical" `Quick test_logical_short_circuit;
          Alcotest.test_case "ternary" `Quick test_ternary_lazy;
          Alcotest.test_case "fields" `Quick test_fields;
          Alcotest.test_case "state val" `Quick test_state_val;
          Alcotest.test_case "hash" `Quick test_hash;
        ] );
      ( "analysis",
        [
          Alcotest.test_case "uses_state" `Quick test_uses_state;
          Alcotest.test_case "fields_used" `Quick test_fields_used;
          Alcotest.test_case "depth and size" `Quick test_depth_size;
          Alcotest.test_case "pretty printer" `Quick test_pp;
        ] );
    ]
