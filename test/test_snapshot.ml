(* Checkpoint/resume property tests.

   For 100 random Domino programs (lib/fuzz/progen), a streamed run is
   suspended at a pseudo-random cycle via [cycle_budget], serialized to
   an mp5-snap/1 snapshot, and resumed — possibly through several more
   suspend/resume chunks, each against a fresh source whose consumed
   prefix must replay under the input digest.  The final summary
   (counters, merged store, exit/access digests) must equal the
   uninterrupted run's exactly: checkpointing must be invisible.

   A third of the seeds run under an active fault plan (pipeline
   down/up, probabilistic crossbar drop/duplication — the RNG cursor
   crosses the snapshot), half with metrics attached (the counters ride
   the snapshot and must come back equal), a fifth with the runtime
   invariant monitor.

   Damaged snapshots — truncated, bit-flipped, version-bumped, padded —
   must be rejected with a positioned [Corrupt] error, never applied;
   well-formed snapshots resumed against the wrong program, trace or
   instrumentation must be rejected as [Mismatch]. *)

module Sim = Mp5_core.Sim
module Store = Mp5_banzai.Store
module Psource = Mp5_workload.Packet_source
module Progen = Mp5_fuzz.Progen
open Mp5_domino

let limits = Progen.limits
let n_seeds = 100
let n_packets = 200

let prog_for seed =
  let src = Progen.generate seed in
  match Compile.compile ~limits src with
  | Ok t -> (src, Mp5_core.Transform.transform ~limits t.Compile.config)
  | Error e ->
      Alcotest.failf "seed %d: generated program failed to compile:\n%s\n%a" seed src
        Compile.pp_error e

let plan_for seed k =
  let src =
    Printf.sprintf
      "seed %d; down @30 pipe=%d; up @90 pipe=%d; xbar-drop @10..120 p=0.05; xbar-dup \
       @10..120 p=0.03"
      (7000 + seed) (1 mod k) (1 mod k)
  in
  match Mp5_fault.Fault.parse src with
  | Ok p -> p
  | Error e -> Alcotest.failf "seed %d: bad fault plan: %s" seed e

let metrics_for prog k =
  let stages = Array.length prog.Mp5_core.Transform.config.Mp5_banzai.Config.stages in
  Mp5_obs.Metrics.create ~stages ~k

let completed seed = function
  | Sim.Completed s -> s
  | Sim.Suspended _ -> Alcotest.failf "seed %d: run suspended without a budget" seed

(* One seed: uninterrupted vs chunked-through-snapshots. *)
let run_seed seed =
  let src, prog = prog_for seed in
  let k = 2 + (seed mod 3) in
  let trace = Progen.trace ~seed ~k ~n:n_packets in
  let params = Sim.default_params ~k in
  let fault = if seed mod 3 = 0 then Some (plan_for seed k) else None in
  let with_metrics = seed mod 2 = 0 in
  let with_monitor = seed mod 5 = 1 in
  let monitor () = if with_monitor then Some (Mp5_fault.Monitor.create ()) else None in
  let straight_metrics = if with_metrics then Some (metrics_for prog k) else None in
  let straight =
    completed seed
      (Sim.run_source ?metrics:straight_metrics ?fault ?monitor:(monitor ()) params prog
         (Psource.of_array trace))
  in
  (* Suspend somewhere inside the run (or past its end for the largest
     budgets — then the chunk completes and resume is never needed,
     which is itself a valid degenerate case). *)
  let budget = 5 + (seed * 13 mod 160) in
  let chunk_metrics = if with_metrics then Some (metrics_for prog k) else None in
  let first =
    Sim.run_source ?metrics:chunk_metrics ?fault ?monitor:(monitor ()) ~cycle_budget:budget
      params prog (Psource.of_array trace)
  in
  let chunks = ref 1 in
  let last_metrics = ref chunk_metrics in
  let rec go = function
    | Sim.Completed s -> s
    | Sim.Suspended snap -> (
        incr chunks;
        if !chunks > 200 then Alcotest.failf "seed %d: resume loop does not converge" seed;
        (* Every chunk resumes against a *fresh* source: the consumed
           prefix is replayed and checked against the snapshot's input
           digest each time. *)
        let m = if with_metrics then Some (metrics_for prog k) else None in
        last_metrics := m;
        match
          Sim.resume ?metrics:m ?monitor:(monitor ()) ~cycle_budget:budget ~snapshot:snap
            prog (Psource.of_array trace)
        with
        | Ok o -> go o
        | Error (Sim.Corrupt msg) ->
            Alcotest.failf "seed %d: fresh snapshot rejected as corrupt: %s\n%s" seed msg src
        | Error (Sim.Mismatch msg) ->
            Alcotest.failf "seed %d: fresh snapshot rejected as mismatch: %s\n%s" seed msg src)
  in
  let chunked = go first in
  if not (Sim.summary_equal straight chunked) then
    Alcotest.failf
      "seed %d (k=%d, budget=%d, %d chunks%s%s): chunked resume diverges from the \
       uninterrupted run on:\n\
       %s"
      seed k budget !chunks
      (if fault <> None then ", faulted" else "")
      (if with_metrics then ", metered" else "")
      src;
  match (straight_metrics, !last_metrics) with
  | Some a, Some b ->
      if not (Mp5_obs.Metrics.equal a b) then
        Alcotest.failf "seed %d: restored metrics diverge from the uninterrupted run's" seed
  | _ -> ()

let test_resume_invisible () =
  for seed = 0 to n_seeds - 1 do
    run_seed seed
  done

(* --- rejection of damaged and mismatched snapshots --- *)

(* A real snapshot to damage: suspend a small run early. *)
let snapshot_fixture () =
  let _, prog = prog_for 3 in
  let trace = Progen.trace ~seed:3 ~k:2 ~n:n_packets in
  let params = Sim.default_params ~k:2 in
  match Sim.run_source ~cycle_budget:20 params prog (Psource.of_array trace) with
  | Sim.Suspended snap -> (prog, trace, params, snap)
  | Sim.Completed _ -> Alcotest.fail "fixture run completed inside a 20-cycle budget"

let resume_err snap prog trace =
  match Sim.resume ~snapshot:snap prog (Psource.of_array trace) with
  | Ok _ -> None
  | Error e -> Some e

let contains msg needle =
  let n = String.length needle and m = String.length msg in
  let rec at i = i + n <= m && (String.sub msg i n = needle || at (i + 1)) in
  n = 0 || at 0

let check_corrupt what snap prog trace needle =
  match resume_err snap prog trace with
  | Some (Sim.Corrupt msg) ->
      let has_pos =
        (* positioned: every corruption message names a byte offset *)
        String.length msg >= 5 && String.sub msg 0 5 = "byte "
      in
      if not has_pos then Alcotest.failf "%s: message not positioned: %s" what msg;
      if not (contains msg needle) then
        Alcotest.failf "%s: expected %S in: %s" what needle msg
  | Some (Sim.Mismatch msg) -> Alcotest.failf "%s: rejected as mismatch, not corrupt: %s" what msg
  | None -> Alcotest.failf "%s: damaged snapshot was accepted" what

let test_rejects_damage () =
  let prog, trace, _params, snap = snapshot_fixture () in
  (* sanity: the pristine snapshot resumes fine *)
  (match Sim.resume ~snapshot:snap prog (Psource.of_array trace) with
  | Ok (Sim.Completed _) -> ()
  | Ok (Sim.Suspended _) -> Alcotest.fail "pristine resume suspended without a budget"
  | Error (Sim.Corrupt m) | Error (Sim.Mismatch m) ->
      Alcotest.failf "pristine snapshot rejected: %s" m);
  check_corrupt "truncated" (String.sub snap 0 (String.length snap / 2)) prog trace
    "truncated";
  check_corrupt "trailing garbage" (snap ^ "xx") prog trace "trailing";
  (let b = Bytes.of_string snap in
   let mid = String.length snap / 2 in
   Bytes.set b mid (Char.chr (Char.code (Bytes.get b mid) lxor 0xff));
   check_corrupt "bit flip" (Bytes.to_string b) prog trace "checksum");
  (let bumped = "mp5-snap/2" ^ String.sub snap 10 (String.length snap - 10) in
   check_corrupt "version bump" bumped prog trace "version");
  check_corrupt "empty" "" prog trace "magic";
  (* Truncation landing exactly on a section boundary passes the framing
     only if the length header agrees — cut the payload *and* rewrite
     nothing, so the checksum catches it wherever the cut lands. *)
  for cut = 1 to 16 do
    let len = String.length snap - cut in
    match resume_err (String.sub snap 0 len) prog trace with
    | Some (Sim.Corrupt _) -> ()
    | Some (Sim.Mismatch m) -> Alcotest.failf "cut %d: mismatch, want corrupt: %s" cut m
    | None -> Alcotest.failf "cut %d: truncated snapshot accepted" cut
  done

let test_rejects_mismatch () =
  let prog, trace, _params, snap = snapshot_fixture () in
  let expect what needle = function
    | Some (Sim.Mismatch msg) ->
        if not (contains msg needle) then
          Alcotest.failf "%s: expected %S in: %s" what needle msg
    | Some (Sim.Corrupt msg) -> Alcotest.failf "%s: corrupt, want mismatch: %s" what msg
    | None -> Alcotest.failf "%s: mismatched resume accepted" what
  in
  (* different program *)
  let _, other_prog = prog_for 4 in
  expect "wrong program" "different program" (resume_err snap other_prog trace);
  (* different trace: same shape, different contents *)
  let other_trace = Progen.trace ~seed:77 ~k:2 ~n:n_packets in
  expect "wrong trace" "does not replay" (resume_err snap prog other_trace);
  (* source shorter than the snapshot's cursor *)
  let short = Array.sub trace 0 5 in
  expect "short source" "ended after" (resume_err snap prog short);
  (* metrics attached on resume, but the snapshot carries none *)
  let stages = Array.length prog.Mp5_core.Transform.config.Mp5_banzai.Config.stages in
  let m = Mp5_obs.Metrics.create ~stages ~k:2 in
  expect "unexpected metrics" "no metrics"
    (match Sim.resume ~metrics:m ~snapshot:snap prog (Psource.of_array trace) with
    | Ok _ -> None
    | Error e -> Some e);
  (* a partially consumed source that is not at the snapshot's cursor *)
  let s = Psource.of_array trace in
  ignore (Psource.next s : Mp5_banzai.Machine.input option);
  expect "misaligned source" "already consumed"
    (match Sim.resume ~snapshot:snap prog s with Ok _ -> None | Error e -> Some e)

(* --- torn-write recovery through the rotation chain ---

   Write two real checkpoints through [Binio.write_rotated] (so [path]
   holds the newest and [path.1] the previous), then damage the newest
   file every way a crashed writer could leave it — truncated at the
   framing edges, at positions spread across every section, at random
   offsets, bit-flipped, emptied — and require [load_latest_valid] to
   fall back to [path.1] and the resumed run to finish bit-identical to
   the uninterrupted one. *)

module Binio = Mp5_util.Binio

let fresh_dir =
  let n = ref 0 in
  fun () ->
    incr n;
    let d =
      Filename.concat (Filename.get_temp_dir_name ())
        (Printf.sprintf "mp5-torn-%d-%d" (Unix.getpid ()) !n)
    in
    if not (Sys.file_exists d) then Unix.mkdir d 0o700;
    d

let write_raw path data =
  Out_channel.with_open_bin path (fun oc -> Out_channel.output_string oc data)

(* A run long enough to emit several checkpoints, plus its uninterrupted
   summary. *)
let checkpoint_fixture () =
  let _, prog = prog_for 5 in
  let trace = Progen.trace ~seed:5 ~k:2 ~n:n_packets in
  let params = Sim.default_params ~k:2 in
  let snaps = ref [] in
  let straight =
    completed 5
      (Sim.run_source ~checkpoint_every:20
         ~on_checkpoint:(fun ~cycle:_ snap -> snaps := snap :: !snaps)
         params prog (Psource.of_array trace))
  in
  match List.rev !snaps with
  | a :: b :: _ -> (prog, trace, straight, a, b)
  | _ -> Alcotest.fail "fixture run emitted fewer than two checkpoints"

let test_rotation_chain () =
  let dir = fresh_dir () in
  let path = Filename.concat dir "s.snap" in
  Binio.write_rotated ~path ~keep:2 "one";
  Binio.write_rotated ~path ~keep:2 "two";
  Binio.write_rotated ~path ~keep:2 "three";
  let read p = In_channel.with_open_bin p In_channel.input_all in
  Alcotest.(check string) "newest in path" "three" (read path);
  Alcotest.(check string) "previous in path.1" "two" (read (path ^ ".1"));
  Alcotest.(check bool) "depth capped at keep" false (Sys.file_exists (path ^ ".2"));
  Binio.remove_slots ~path ~keep:2;
  Alcotest.(check bool) "slots removed" false
    (Sys.file_exists path || Sys.file_exists (path ^ ".1"))

let test_torn_fallback () =
  let prog, trace, straight, older, newest = checkpoint_fixture () in
  let dir = fresh_dir () in
  let path = Filename.concat dir "s.snap" in
  let magic = Sim.snapshot_magic in
  (* The damage sites: the framing edges (magic line, length, checksum),
     25 positions spread evenly across the file (crossing every payload
     section), and 16 seeded-random offsets. *)
  let nl = String.index newest '\n' in
  let len = String.length newest in
  let edges = [ 1; nl; nl + 1; nl + 9; nl + 17 ] in
  let spread = List.init 25 (fun i -> len * (i + 1) / 26) in
  let st = Random.State.make [| 0x746f726e |] in
  let random = List.init 16 (fun _ -> 1 + Random.State.int st (len - 1)) in
  let check_fallback what damaged =
    (* Rebuild the chain: older in path.1, the damaged newest in path. *)
    Binio.remove_slots ~path ~keep:2;
    Binio.write_rotated ~path ~keep:2 older;
    Binio.rotate ~path ~keep:2;
    write_raw path damaged;
    (match Binio.load_latest_valid ~magic ~path ~keep:2 with
    | Ok (slot, contents) ->
        if slot <> path ^ ".1" then
          Alcotest.failf "%s: picked %s instead of falling back" what slot;
        if contents <> older then Alcotest.failf "%s: fallback returned wrong contents" what
    | Error e -> Alcotest.failf "%s: no fallback found: %s" what e);
    (* And the fallback snapshot must still finish the run bit-identical
       to the uninterrupted one. *)
    match Sim.resume ~snapshot:older prog (Psource.of_array trace) with
    | Ok (Sim.Completed s) ->
        if not (Sim.summary_equal straight s) then
          Alcotest.failf "%s: resume from fallback diverged" what
    | Ok (Sim.Suspended _) -> Alcotest.failf "%s: fallback resume suspended" what
    | Error (Sim.Corrupt m) | Error (Sim.Mismatch m) ->
        Alcotest.failf "%s: fallback snapshot rejected: %s" what m
  in
  List.iter
    (fun cut -> check_fallback (Printf.sprintf "truncate@%d" cut) (String.sub newest 0 cut))
    (edges @ spread @ random);
  List.iter
    (fun pos ->
      let b = Bytes.of_string newest in
      Bytes.set b pos (Char.chr (Char.code (Bytes.get b pos) lxor 0x40));
      check_fallback (Printf.sprintf "bitflip@%d" pos) (Bytes.to_string b))
    (List.filteri (fun i _ -> i mod 2 = 0) (spread @ random));
  check_fallback "empty file" "";
  (* Both slots torn: recovery must report an error, not invent state. *)
  Binio.remove_slots ~path ~keep:2;
  write_raw path (String.sub newest 0 (len / 2));
  write_raw (path ^ ".1") (String.sub older 0 7);
  (match Binio.load_latest_valid ~magic ~path ~keep:2 with
  | Ok (slot, _) -> Alcotest.failf "both-torn chain accepted slot %s" slot
  | Error _ -> ());
  (* An intact newest slot wins without falling back. *)
  Binio.remove_slots ~path ~keep:2;
  Binio.write_rotated ~path ~keep:2 older;
  Binio.write_rotated ~path ~keep:2 newest;
  match Binio.load_latest_valid ~magic ~path ~keep:2 with
  | Ok (slot, contents) ->
      Alcotest.(check string) "newest slot wins" path slot;
      Alcotest.(check bool) "newest contents" true (contents = newest)
  | Error e -> Alcotest.failf "intact chain rejected: %s" e

(* --- fabric snapshots ("mp5-fab/1") ---

   A mid-flight fabric run — packets inside switch machines, queued at
   ingress adapters, and in flight on delay-carrying links — suspended
   by [cycle_budget], serialized, and resumed must finish bit-identical
   to the uninterrupted run ([Fabric.results_equal]: every counter,
   digest and histogram), including when the resume runs on a team.
   Damaged fabric snapshots are [Corrupt]; a snapshot resumed against a
   different topology, routing policy or program is [Mismatch]. *)

module Fabric = Mp5_fabric.Fabric
module Topology = Mp5_fabric.Topology
module Routing = Mp5_fabric.Routing

let fabric_fixture () =
  let _, prog = prog_for 13 in
  (* Trunk delay 2 keeps packets in flight on the spine links at almost
     any suspension cycle. *)
  let topo = Topology.leaf_spine ~leaves:2 ~spines:2 ~hosts_per_leaf:1 ~delay:2 in
  let rng = Mp5_util.Rng.create 414 in
  let trace =
    Array.init 150 (fun i ->
        {
          Mp5_banzai.Machine.time = i / 2;
          port = Mp5_util.Rng.int rng 2;
          headers = Array.init 4 (fun _ -> Mp5_util.Rng.int rng 16 - 2);
        })
  in
  let dst (i : Mp5_banzai.Machine.input) = 1 - (i.Mp5_banzai.Machine.port mod 2) in
  let fp =
    {
      Fabric.fp_sim = Sim.default_params ~k:2;
      fp_topo = topo;
      fp_policy = Routing.shortest_paths topo;
      fp_plan = Mp5_fault.Linkplan.empty;
    }
  in
  (prog, trace, dst, fp)

let fabric_completed = function
  | Fabric.Completed r -> r
  | Fabric.Suspended _ -> Alcotest.fail "fabric run suspended without a budget"

let test_fabric_resume () =
  let prog, trace, dst, fp = fabric_fixture () in
  let straight =
    fabric_completed (Fabric.run ~dst fp prog (Psource.of_array trace))
  in
  (* Chunk the run through suspensions; each leg resumes from the
     previous snapshot against a fresh source (replayed-prefix path). *)
  let team = Mp5_util.Pool.Team.create ~jobs:2 in
  let rec chunks ?team n outcome =
    match outcome with
    | Fabric.Completed r -> (n, r)
    | Fabric.Suspended snap -> (
        if n > 50 then Alcotest.fail "fabric resume chain does not terminate";
        match
          Fabric.resume ?team ~cycle_budget:30 ~dst ~snapshot:snap fp prog
            (Psource.of_array trace)
        with
        | Ok o -> chunks ?team (n + 1) o
        | Error (Sim.Corrupt m) -> Alcotest.failf "chunk %d: corrupt: %s" n m
        | Error (Sim.Mismatch m) -> Alcotest.failf "chunk %d: mismatch: %s" n m)
  in
  let first = Fabric.run ~cycle_budget:12 ~dst fp prog (Psource.of_array trace) in
  (match first with
  | Fabric.Suspended _ -> ()
  | Fabric.Completed _ -> Alcotest.fail "budget 12 did not suspend the fabric run");
  let n, chunked = chunks 0 first in
  if n < 2 then Alcotest.failf "expected several suspensions, got %d" n;
  if not (Fabric.results_equal straight chunked) then
    Alcotest.fail "chunked fabric run diverges from the uninterrupted run";
  (* Resuming on a team must land on the same result. *)
  let _, par = chunks ~team 0 (Fabric.run ~cycle_budget:12 ~dst fp prog (Psource.of_array trace)) in
  Mp5_util.Pool.Team.shutdown team;
  if not (Fabric.results_equal straight par) then
    Alcotest.fail "fabric resume on a team diverges from the uninterrupted run"

let test_fabric_rejects () =
  let prog, trace, dst, fp = fabric_fixture () in
  let snap =
    match Fabric.run ~cycle_budget:12 ~dst fp prog (Psource.of_array trace) with
    | Fabric.Suspended snap -> snap
    | Fabric.Completed _ -> Alcotest.fail "budget 12 did not suspend the fabric run"
  in
  let err ?(fp = fp) ?(prog = prog) snap =
    match Fabric.resume ~dst ~snapshot:snap fp prog (Psource.of_array trace) with
    | Ok _ -> None
    | Error e -> Some e
  in
  (* corrupt: bit flip, truncation, garbage magic *)
  (let b = Bytes.of_string snap in
   let mid = String.length snap / 2 in
   Bytes.set b mid (Char.chr (Char.code (Bytes.get b mid) lxor 0xff));
   match err (Bytes.to_string b) with
   | Some (Sim.Corrupt msg) ->
       if not (contains msg "checksum") then Alcotest.failf "bit flip: %s" msg
   | Some (Sim.Mismatch msg) -> Alcotest.failf "bit flip: mismatch, want corrupt: %s" msg
   | None -> Alcotest.fail "bit-flipped fabric snapshot accepted");
  (match err (String.sub snap 0 (String.length snap / 3)) with
  | Some (Sim.Corrupt _) -> ()
  | _ -> Alcotest.fail "truncated fabric snapshot accepted");
  (match err "" with
  | Some (Sim.Corrupt _) -> ()
  | _ -> Alcotest.fail "empty fabric snapshot accepted");
  (* mismatch: a different topology, and a different program *)
  let other_topo = Topology.line ~switches:2 ~hosts_per_sw:1 ~delay:2 in
  let other_fp =
    { fp with Fabric.fp_topo = other_topo; fp_policy = Routing.shortest_paths other_topo }
  in
  (match err ~fp:other_fp snap with
  | Some (Sim.Mismatch msg) ->
      if not (contains msg "topology") then Alcotest.failf "wrong topology: %s" msg
  | Some (Sim.Corrupt msg) -> Alcotest.failf "wrong topology: corrupt, want mismatch: %s" msg
  | None -> Alcotest.fail "fabric snapshot accepted under a different topology");
  let _, other_prog = prog_for 4 in
  match err ~prog:other_prog snap with
  | Some (Sim.Mismatch _) -> ()
  | Some (Sim.Corrupt msg) -> Alcotest.failf "wrong program: corrupt, want mismatch: %s" msg
  | None -> Alcotest.fail "fabric snapshot accepted under a different program"

let () =
  Alcotest.run "snapshot"
    [
      ( "resume",
        [
          Alcotest.test_case "checkpoint/resume is invisible (100 programs)" `Quick
            test_resume_invisible;
        ] );
      ( "rejection",
        [
          Alcotest.test_case "damaged snapshots are rejected, positioned" `Quick
            test_rejects_damage;
          Alcotest.test_case "mismatched snapshots are rejected" `Quick test_rejects_mismatch;
        ] );
      ( "rotation",
        [
          Alcotest.test_case "write_rotated keeps a bounded chain" `Quick test_rotation_chain;
          Alcotest.test_case "torn newest snapshot falls back and finishes bit-identical"
            `Quick test_torn_fallback;
        ] );
      ( "fabric",
        [
          Alcotest.test_case "mid-flight fabric snapshot/resume is invisible" `Quick
            test_fabric_resume;
          Alcotest.test_case "damaged or mismatched fabric snapshots are rejected" `Quick
            test_fabric_rejects;
        ] );
    ]
