(* Tests for the compiler middle end (flatten/pipelining) and code
   generation: stage structure, atom fusion, predication, rejection of
   programs outside the atom template, machine limits. *)

module Expr = Mp5_banzai.Expr
module Atom = Mp5_banzai.Atom
module Config = Mp5_banzai.Config
module Machine = Mp5_banzai.Machine
module Store = Mp5_banzai.Store
module Capability = Mp5_banzai.Capability
open Mp5_domino

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let compile ?limits src = Compile.compile_exn ?limits src

let wrap body =
  Printf.sprintf "struct Packet { int x; int y; };\nint r[4];\nint s[4];\nvoid func(struct Packet p) { %s }" body

let phase_error ?limits src expected_phase =
  match Compile.compile ?limits src with
  | Ok _ -> Alcotest.fail "expected a compile error"
  | Error e -> check "phase" true (e.Compile.phase = expected_phase)

(* --- stage structure --- *)

let test_stateless_program_stages () =
  let t = compile "struct Packet { int x; };\nvoid func(struct Packet p) { p.x = p.x * 2 + 1; }" in
  (* No atoms: just the two write-back stages. *)
  check_int "stages" 2 (Array.length t.Compile.config.Config.stages);
  check "no atoms" true (Config.stateful_stages t.Compile.config = [])

let test_single_atom_stage () =
  let t = compile (wrap "r[p.x % 4] = r[p.x % 4] + 1;") in
  check_int "one atom stage, no write-back" 1 (Array.length t.Compile.config.Config.stages);
  match t.Compile.config.Config.stages.(0).Config.atoms with
  | [ a ] ->
      check "guard none" true (a.Atom.guard = None);
      check "update present" true (a.Atom.update <> None);
      check "no outputs needed" true (a.Atom.outputs = [])
  | _ -> Alcotest.fail "expected exactly one atom"

let test_dependent_atoms_levels () =
  (* s depends on the value read from r, so it must land in a later stage. *)
  let t = compile (wrap "p.y = r[p.x % 4]; s[p.x % 4] = s[p.x % 4] + p.y;") in
  let stage_of name =
    let reg_id = Hashtbl.find t.Compile.env.Typecheck.reg_index name in
    Option.get (Config.stage_of_reg t.Compile.config reg_id)
  in
  check "r before s" true (stage_of "r" < stage_of "s")

let test_independent_atoms_same_stage () =
  let t = compile (wrap "r[p.x % 4] = r[p.x % 4] + 1; s[p.y % 4] = s[p.y % 4] + 1;") in
  let stage_of name =
    let reg_id = Hashtbl.find t.Compile.env.Typecheck.reg_index name in
    Option.get (Config.stage_of_reg t.Compile.config reg_id)
  in
  check_int "same level" (stage_of "r") (stage_of "s")

(* --- fusion semantics via golden execution --- *)

let run1 t headers =
  let trace = [| { Machine.time = 0; port = 0; headers } |] in
  Machine.run t.Compile.config trace

let test_read_after_write_new_value () =
  let t = compile (wrap "r[0] = r[0] + 5; p.x = r[0];") in
  let r = run1 t [| 0; 0 |] in
  check_int "new value exported" 5 r.Machine.headers_out.(0).(0)

let test_read_before_write_old_value () =
  let t = compile (wrap "p.x = r[0]; r[0] = 9;") in
  let r = run1 t [| 0; 0 |] in
  check_int "old value exported" 0 r.Machine.headers_out.(0).(0);
  check_int "write applied" 9 (Store.get r.Machine.store ~reg:0 ~idx:0)

let test_predicated_write () =
  (* Branches must target distinct arrays: one array cannot be accessed
     at two different indices by one packet (see rejection tests). *)
  let t = compile (wrap "if (p.x > 3) { r[0] = 1; } else { s[1] = 2; }") in
  let r = run1 t [| 5; 0 |] in
  check_int "then branch" 1 (Store.get r.Machine.store ~reg:0 ~idx:0);
  check_int "else not taken" 0 (Store.get r.Machine.store ~reg:1 ~idx:1);
  let r2 = run1 t [| 1; 0 |] in
  check_int "else branch" 2 (Store.get r2.Machine.store ~reg:1 ~idx:1)

let test_nested_if () =
  let t = compile (wrap "if (p.x) { if (p.y) { r[0] = 1; } else { r[0] = 2; } }") in
  check_int "both" 1 (Store.get (run1 t [| 1; 1 |]).Machine.store ~reg:0 ~idx:0);
  check_int "outer only" 2 (Store.get (run1 t [| 1; 0 |]).Machine.store ~reg:0 ~idx:0);
  check_int "neither" 0 (Store.get (run1 t [| 0; 1 |]).Machine.store ~reg:0 ~idx:0)

let test_stateful_predicate_folded () =
  (* The write predicate depends on the register value itself: legal,
     folded into the atom's update. *)
  let t = compile (wrap "if (r[0] > 2) { r[0] = 0; } p.x = r[0];") in
  let store = Store.create t.Compile.config in
  Store.set store ~reg:0 ~idx:0 5;
  let fields = Array.make (Array.length t.Compile.config.Config.fields) 0 in
  Machine.run_packet t.Compile.config store ~fields ~on_access:(fun ~reg:_ ~cell:_ -> ());
  check_int "reset when above threshold" 0 (Store.get store ~reg:0 ~idx:0)

let test_ternary_access_predication () =
  (* Only the taken arm counts as an access (Figure 3 semantics). *)
  let t = compile (wrap "p.x = (p.y == 1) ? r[0] : s[0];") in
  let r = run1 t [| 0; 1 |] in
  check "accessed r only" true (Hashtbl.mem r.Machine.access_seqs (0, 0));
  check "did not access s" false (Hashtbl.mem r.Machine.access_seqs (1, 0))

let test_local_variables_inlined () =
  let t = compile (wrap "int a = p.x + 1; int b = a * 2; p.y = b + a;") in
  let r = run1 t [| 3; 0 |] in
  check_int "value" ((4 * 2) + 4) r.Machine.headers_out.(0).(1)

let test_field_swap () =
  let t = compile (wrap "int tmp = p.x; p.x = p.y; p.y = tmp;") in
  let r = run1 t [| 1; 2 |] in
  check_int "x" 2 r.Machine.headers_out.(0).(0);
  check_int "y" 1 r.Machine.headers_out.(0).(1)

let test_sequential_field_updates () =
  let t = compile (wrap "p.x = p.x + 1; p.x = p.x * 2;") in
  let r = run1 t [| 3; 0 |] in
  check_int "applied in order" 8 r.Machine.headers_out.(0).(0)

(* --- rejection paths --- *)

let test_reject_different_indices () =
  phase_error (wrap "r[0] = 1; r[1] = 2;") Compile.Pipeline

let test_reject_mid_chain_read () =
  (* Read between two writes, exported: not expressible in one atom. *)
  phase_error (wrap "r[0] = 1; p.x = r[0]; r[0] = 2;") Compile.Pipeline

let test_mid_chain_read_unused_is_fine () =
  (* The same shape is fine if the intermediate read is never used. *)
  let t = compile (wrap "r[0] = 1; int dead = r[0]; r[0] = 2;") in
  let r = run1 t [| 0; 0 |] in
  check_int "last write wins" 2 (Store.get r.Machine.store ~reg:0 ~idx:0)

let test_reject_circular_dependency () =
  phase_error (wrap "int a = r[0]; int b = s[0]; r[0] = b; s[0] = a;") Compile.Pipeline

let test_reject_too_many_stages () =
  let limits = { Capability.default with Capability.max_stages = 1 } in
  (* Two dependent atoms need two stages plus write-back. *)
  phase_error ~limits (wrap "p.y = r[p.x % 4]; s[p.y % 4] = 1;") Compile.Lower

let test_reject_expression_too_deep () =
  let limits = { Capability.default with Capability.max_expr_depth = 2 } in
  phase_error ~limits
    (wrap "p.x = ((((p.x + 1) * 2) + 3) * 4) + (p.y * (p.x + (p.y * 3)));")
    Compile.Lower

let test_reject_missing_alu_op () =
  let limits = { Capability.default with Capability.allow_mul_div = false } in
  phase_error ~limits (wrap "p.x = p.x * 3;") Compile.Lower

let test_stage_splitting () =
  let limits = { Capability.default with Capability.max_atoms_per_stage = 1 } in
  let t = compile ~limits (wrap "r[p.x % 4] = r[p.x % 4] + 1; s[p.y % 4] = s[p.y % 4] + 1;") in
  Array.iter
    (fun (st : Config.stage) -> check "at most one atom" true (List.length st.Config.atoms <= 1))
    t.Compile.config.Config.stages;
  (* Splitting must not change semantics. *)
  let r = run1 t [| 1; 2 |] in
  check_int "r updated" 1 (Store.get r.Machine.store ~reg:0 ~idx:1);
  check_int "s updated" 1 (Store.get r.Machine.store ~reg:1 ~idx:2)

let test_error_rendering () =
  match Compile.compile "struct Packet { int x; } void" with
  | Error e ->
      let s = Format.asprintf "%a" Compile.pp_error e in
      check "mentions phase" true (String.length s > 10)
  | Ok _ -> Alcotest.fail "expected error"

let test_pvsm_validates () =
  List.iter
    (fun (name, src) ->
      let t = compile src in
      match Config.validate t.Compile.pvsm with
      | Ok () -> ()
      | Error m -> Alcotest.failf "%s: invalid PVSM: %s" name m)
    Mp5_apps.Sources.all_named

let () =
  Alcotest.run "compile"
    [
      ( "stages",
        [
          Alcotest.test_case "stateless program" `Quick test_stateless_program_stages;
          Alcotest.test_case "single atom" `Quick test_single_atom_stage;
          Alcotest.test_case "dependent atoms ordered" `Quick test_dependent_atoms_levels;
          Alcotest.test_case "independent atoms share level" `Quick
            test_independent_atoms_same_stage;
        ] );
      ( "semantics",
        [
          Alcotest.test_case "read after write" `Quick test_read_after_write_new_value;
          Alcotest.test_case "read before write" `Quick test_read_before_write_old_value;
          Alcotest.test_case "predicated write" `Quick test_predicated_write;
          Alcotest.test_case "nested if" `Quick test_nested_if;
          Alcotest.test_case "stateful predicate folded" `Quick test_stateful_predicate_folded;
          Alcotest.test_case "ternary access predication" `Quick test_ternary_access_predication;
          Alcotest.test_case "locals inlined" `Quick test_local_variables_inlined;
          Alcotest.test_case "field swap" `Quick test_field_swap;
          Alcotest.test_case "sequential field updates" `Quick test_sequential_field_updates;
        ] );
      ( "rejections",
        [
          Alcotest.test_case "different indices" `Quick test_reject_different_indices;
          Alcotest.test_case "mid-chain read" `Quick test_reject_mid_chain_read;
          Alcotest.test_case "unused mid-chain read ok" `Quick test_mid_chain_read_unused_is_fine;
          Alcotest.test_case "circular dependency" `Quick test_reject_circular_dependency;
          Alcotest.test_case "too many stages" `Quick test_reject_too_many_stages;
          Alcotest.test_case "expression too deep" `Quick test_reject_expression_too_deep;
          Alcotest.test_case "missing ALU op" `Quick test_reject_missing_alu_op;
          Alcotest.test_case "stage splitting" `Quick test_stage_splitting;
          Alcotest.test_case "error rendering" `Quick test_error_rendering;
          Alcotest.test_case "all app PVSMs validate" `Quick test_pvsm_validates;
        ] );
    ]
