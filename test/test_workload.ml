(* Tests for workload generation: arrival processes, access patterns,
   flow-level traffic, the web-search distribution. *)

module Tracegen = Mp5_workload.Tracegen
module Websearch = Mp5_workload.Websearch
module Machine = Mp5_banzai.Machine
module Rng = Mp5_util.Rng

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let spec ?(n = 4000) ?(k = 4) ?(bytes = 64) ?(reg = 512) ?(pattern = Tracegen.Uniform) () =
  {
    Tracegen.n_packets = n;
    k;
    pkt_bytes = bytes;
    n_fields = 3;
    index_fields = [ 0; 1 ];
    reg_size = reg;
    pattern;
    n_ports = 64;
    seed = 9;
  }

let test_line_rate_64b () =
  (* 64-byte packets at line rate: exactly k arrivals per cycle. *)
  let trace = Tracegen.sensitivity (spec ()) in
  let by_time = Hashtbl.create 64 in
  Array.iter
    (fun i ->
      let c = try Hashtbl.find by_time i.Machine.time with Not_found -> 0 in
      Hashtbl.replace by_time i.Machine.time (c + 1))
    trace;
  Hashtbl.iter (fun _ c -> check_int "k per cycle" 4 c) by_time

let test_larger_packets_slower () =
  let t64 = Tracegen.sensitivity (spec ~bytes:64 ()) in
  let t512 = Tracegen.sensitivity (spec ~bytes:512 ()) in
  let span t = t.(Array.length t - 1).Machine.time - t.(0).Machine.time in
  check "8x packets stretch 8x" true (span t512 >= 7 * span t64)

let test_times_monotone () =
  let trace = Tracegen.sensitivity (spec ~bytes:200 ()) in
  let ok = ref true in
  Array.iteri
    (fun i p -> if i > 0 && p.Machine.time < trace.(i - 1).Machine.time then ok := false)
    trace;
  check "non-decreasing times" true !ok

let test_index_fields_in_range () =
  let trace = Tracegen.sensitivity (spec ~reg:32 ~pattern:Tracegen.Skewed ()) in
  Array.iter
    (fun p ->
      check "field 0 in range" true (p.Machine.headers.(0) >= 0 && p.Machine.headers.(0) < 32);
      check "field 1 in range" true (p.Machine.headers.(1) >= 0 && p.Machine.headers.(1) < 32))
    trace

let test_skew_concentration () =
  let trace = Tracegen.sensitivity (spec ~n:20000 ~reg:100 ~pattern:Tracegen.Skewed ()) in
  let hot = Array.fold_left (fun acc p -> if p.Machine.headers.(0) < 30 then acc + 1 else acc) 0 trace in
  let frac = float_of_int hot /. 20000.0 in
  check "95/30 skew" true (abs_float (frac -. 0.95) < 0.02)

let test_rotating_skew_moves () =
  let trace =
    Tracegen.sensitivity (spec ~n:20000 ~reg:100 ~pattern:(Tracegen.Skewed_rotating 5000) ())
  in
  (* The modal region of the first and last windows must differ. *)
  let window lo hi =
    let counts = Array.make 100 0 in
    for i = lo to hi - 1 do
      let v = trace.(i).Machine.headers.(0) in
      counts.(v) <- counts.(v) + 1
    done;
    counts
  in
  let first = window 0 5000 and last = window 15000 20000 in
  let top c =
    let best = ref 0 in
    Array.iteri (fun i v -> if v > c.(!best) then best := i) c;
    !best
  in
  check "hot region moved" true (top first <> top last)

let test_bursty_uniform_long_run () =
  let trace =
    Tracegen.sensitivity (spec ~n:40000 ~reg:50 ~pattern:(Tracegen.Uniform_bursty 2000) ())
  in
  (* Long-run roughly uniform: every cell touched. *)
  let counts = Array.make 50 0 in
  Array.iter (fun p -> counts.(p.Machine.headers.(0)) <- counts.(p.Machine.headers.(0)) + 1) trace;
  check "all cells touched" true (Array.for_all (fun c -> c > 0) counts);
  (* Short-run bursty: one window concentrates. *)
  let w = Array.make 50 0 in
  for i = 0 to 1999 do
    w.(trace.(i).Machine.headers.(0)) <- w.(trace.(i).Machine.headers.(0)) + 1
  done;
  let top5 = Array.to_list w |> List.sort (fun a b -> compare b a) |> fun l -> List.filteri (fun i _ -> i < 5) l in
  check "window concentrated" true (List.fold_left ( + ) 0 top5 > 2000 * 6 / 10)

let test_flows_structure () =
  let pkts = Tracegen.flows ~seed:4 ~n_packets:5000 ~k:4 ~concurrency:16 () in
  check_int "count" 5000 (Array.length pkts);
  (* Per-flow seqnos are 0,1,2,... in arrival order. *)
  let next = Hashtbl.create 64 in
  Array.iter
    (fun (p : Tracegen.flow_packet) ->
      let expect = try Hashtbl.find next p.Tracegen.flow with Not_found -> 0 in
      check_int "seqno contiguous" expect p.Tracegen.seqno;
      Hashtbl.replace next p.Tracegen.flow (expect + 1))
    pkts;
  (* 5-tuple constant within a flow. *)
  let tuple = Hashtbl.create 64 in
  Array.iter
    (fun (p : Tracegen.flow_packet) ->
      let t = (p.Tracegen.src, p.Tracegen.dst, p.Tracegen.sport, p.Tracegen.dport) in
      match Hashtbl.find_opt tuple p.Tracegen.flow with
      | None -> Hashtbl.add tuple p.Tracegen.flow t
      | Some t' -> check "tuple stable" true (t = t'))
    pkts

let test_flows_bimodal_sizes () =
  let pkts = Tracegen.flows ~seed:5 ~n_packets:2000 ~k:4 ~concurrency:16 () in
  Array.iter
    (fun (p : Tracegen.flow_packet) ->
      check "mode size" true (p.Tracegen.bytes = 200 || p.Tracegen.bytes = 1400))
    pkts

let test_flows_arrival_rate () =
  let pkts = Tracegen.flows ~seed:6 ~n_packets:2000 ~k:4 ~concurrency:16 () in
  let total_bytes = Array.fold_left (fun acc p -> acc + p.Tracegen.bytes) 0 pkts in
  let span = pkts.(1999).Tracegen.time - pkts.(0).Tracegen.time in
  (* line rate: 64 * k bytes per cycle *)
  let expected = total_bytes / (64 * 4) in
  check "byte-rate paced" true (abs (span - expected) < expected / 10)

let test_headers_of_flows () =
  let pkts = Tracegen.flows ~seed:7 ~n_packets:100 ~k:2 ~concurrency:16 () in
  let trace = Tracegen.headers_of_flows pkts ~fill:(fun p -> [| p.Tracegen.flow |]) in
  Array.iteri
    (fun i input ->
      check_int "time copied" pkts.(i).Tracegen.time input.Machine.time;
      check_int "header filled" pkts.(i).Tracegen.flow input.Machine.headers.(0))
    trace

let test_datamining () =
  let module D = Mp5_workload.Datamining in
  check "heavier tail than web search" true
    (D.mean_flow_size () > Websearch.mean_flow_size ());
  let rng = Rng.create 9 in
  let small = ref 0 in
  for _ = 1 to 2000 do
    let s = D.sample_flow_size rng in
    check "positive and bounded" true (s > 0 && s <= 1_000_000_000);
    if s <= 2000 then incr small
  done;
  (* ~70% of flows are at most 2 KB. *)
  check "mostly tiny flows" true
    (abs_float ((float_of_int !small /. 2000.0) -. 0.70) < 0.05);
  check "at least one packet" true (D.sample_flow_packets rng ~mean_pkt_bytes:800.0 >= 1)

let test_websearch () =
  check "mean in published ballpark" true
    (let m = Websearch.mean_flow_size () in
     m > 1_000_000.0 && m < 3_000_000.0);
  let rng = Rng.create 8 in
  for _ = 1 to 1000 do
    let s = Websearch.sample_flow_size rng in
    check "positive and bounded" true (s > 0 && s <= 20_000_000)
  done;
  let p = Websearch.sample_flow_packets rng ~mean_pkt_bytes:800.0 in
  check "at least one packet" true (p >= 1)

let test_trace_io_roundtrip () =
  let pkts = Tracegen.flows ~seed:9 ~n_packets:200 ~k:2 ~concurrency:8 () in
  let trace = Tracegen.headers_of_flows pkts ~fill:(fun p -> [| p.Tracegen.src; p.Tracegen.bytes |]) in
  match Mp5_workload.Trace_io.of_string (Mp5_workload.Trace_io.to_string trace) with
  | Error e -> Alcotest.fail e
  | Ok back ->
      check_int "length" (Array.length trace) (Array.length back);
      Array.iteri
        (fun i p ->
          check_int "time" trace.(i).Machine.time p.Machine.time;
          check_int "port" trace.(i).Machine.port p.Machine.port;
          check "headers" true (trace.(i).Machine.headers = p.Machine.headers))
        back

let test_trace_io_parsing () =
  (match Mp5_workload.Trace_io.of_string "# comment\n0 1 5 6\n\n1 0 7 8\n" with
  | Ok t ->
      check_int "two packets" 2 (Array.length t);
      check_int "field" 6 t.(0).Machine.headers.(1)
  | Error e -> Alcotest.fail e);
  (match Mp5_workload.Trace_io.of_string "0 1 5\n0 1 5 6\n" with
  | Error e ->
      check "arity error positioned at byte 6" true
        (String.length e >= 6 && String.sub e 0 6 = "byte 6");
      check "arity error carries line 2" true
        (let re = "(line 2)" in
         let rec has i =
           i + String.length re <= String.length e
           && (String.sub e i (String.length re) = re || has (i + 1))
         in
         has 0)
  | Ok _ -> Alcotest.fail "expected arity error");
  (match Mp5_workload.Trace_io.of_string "0 x 5\n" with
  | Error e ->
      check "integer error positioned at byte 0" true
        (String.length e >= 6 && String.sub e 0 6 = "byte 0")
  | Ok _ -> Alcotest.fail "expected integer error");
  match Mp5_workload.Trace_io.of_string "# only a comment\n\n" with
  | Error e -> check "empty trace rejected" true (e = "no packets in trace")
  | Ok _ -> Alcotest.fail "expected empty-trace error"

let () =
  Alcotest.run "workload"
    [
      ( "sensitivity traces",
        [
          Alcotest.test_case "line rate 64B" `Quick test_line_rate_64b;
          Alcotest.test_case "larger packets slower" `Quick test_larger_packets_slower;
          Alcotest.test_case "monotone times" `Quick test_times_monotone;
          Alcotest.test_case "indices in range" `Quick test_index_fields_in_range;
          Alcotest.test_case "skew concentration" `Quick test_skew_concentration;
          Alcotest.test_case "rotating skew" `Quick test_rotating_skew_moves;
          Alcotest.test_case "bursty uniform" `Quick test_bursty_uniform_long_run;
        ] );
      ( "flows",
        [
          Alcotest.test_case "structure" `Quick test_flows_structure;
          Alcotest.test_case "bimodal sizes" `Quick test_flows_bimodal_sizes;
          Alcotest.test_case "arrival pacing" `Quick test_flows_arrival_rate;
          Alcotest.test_case "headers adapter" `Quick test_headers_of_flows;
          Alcotest.test_case "web-search distribution" `Quick test_websearch;
          Alcotest.test_case "data-mining distribution" `Quick test_datamining;
        ] );
      ( "trace-io",
        [
          Alcotest.test_case "round trip" `Quick test_trace_io_roundtrip;
          Alcotest.test_case "parsing" `Quick test_trace_io_parsing;
        ] );
    ]
