(* Property-based tests (QCheck, registered as alcotest cases).

   The central property is the paper's correctness claim quantified over
   programs: for random stateful Domino programs and random line-rate
   traces, the MP5 simulator is functionally equivalent to the logical
   single-pipeline switch — identical final register state, identical
   output headers, zero C1 violations.

   The compiler itself is checked against an independent reference
   interpreter that executes the AST directly with C semantics. *)

module Expr = Mp5_banzai.Expr
module Machine = Mp5_banzai.Machine
module Store = Mp5_banzai.Store
module Capability = Mp5_banzai.Capability
module Sim = Mp5_core.Sim
module Switch = Mp5_core.Switch
module Equiv = Mp5_core.Equiv
module Rng = Mp5_util.Rng
open Mp5_domino
module Progen = Mp5_fuzz.Progen
module Interp = Mp5_fuzz.Interp

(* ------------------------------------------------------------------ *)
(* Properties.                                                         *)
(* ------------------------------------------------------------------ *)

let limits = Progen.limits
let gen_trace = Progen.trace

let compile_gen seed =
  let src = Progen.generate seed in
  match Compile.compile ~limits src with
  | Ok t -> (src, t)
  | Error e -> QCheck.Test.fail_reportf "generated program failed to compile:\n%s\n%a" src Compile.pp_error e

let prop_compiler_matches_interpreter =
  QCheck.Test.make ~name:"compiled golden machine = reference interpreter" ~count:120
    QCheck.(small_nat)
    (fun seed ->
      let src, t = compile_gen seed in
      let trace = gen_trace ~seed ~k:2 ~n:60 in
      let golden = Machine.run t.Compile.config trace in
      let ref_regs, ref_headers = Interp.interp t.Compile.env trace in
      Array.iteri
        (fun r arr ->
          Array.iteri
            (fun i v ->
              let got = Store.get golden.Machine.store ~reg:r ~idx:i in
              if got <> v then
                QCheck.Test.fail_reportf "program:\n%s\nreg %d[%d]: interp %d, compiled %d" src
                  r i v got)
            arr)
        ref_regs;
      Array.iteri
        (fun p h ->
          if h <> golden.Machine.headers_out.(p) then
            QCheck.Test.fail_reportf "program:\n%s\npacket %d headers differ" src p)
        ref_headers;
      true)

let prop_mp5_equivalent =
  QCheck.Test.make ~name:"MP5 functionally equivalent to single pipeline" ~count:80
    QCheck.(pair small_nat (QCheck.int_range 2 5))
    (fun (seed, k) ->
      let src, t = compile_gen seed in
      let prog = Mp5_core.Transform.transform ~limits t.Compile.config in
      let trace = gen_trace ~seed ~k ~n:400 in
      let golden = Machine.run t.Compile.config trace in
      let r = Sim.run (Sim.default_params ~k) prog trace in
      let rep =
        Equiv.compare ~golden ~n_packets:(Array.length trace) ~store:r.Sim.store
          ~headers_out:r.Sim.headers_out ~access_seqs:r.Sim.access_seqs
          ~exit_order:r.Sim.exit_order ()
      in
      if not (Equiv.equivalent rep) || rep.Equiv.c1_violations > 0 then
        QCheck.Test.fail_reportf "program:\n%s\nk=%d: %s" src k
          (Format.asprintf "%a" Equiv.pp rep);
      true)

let prop_mp5_modes_deliver_everything =
  QCheck.Test.make ~name:"all simulator modes deliver every packet (adaptive FIFOs)" ~count:30
    QCheck.(small_nat)
    (fun seed ->
      let _, t = compile_gen seed in
      let prog = Mp5_core.Transform.transform ~limits t.Compile.config in
      let trace = gen_trace ~seed ~k:3 ~n:200 in
      List.for_all
        (fun mode ->
          let params = { (Sim.default_params ~k:3) with Sim.mode = mode } in
          let r = Sim.run params prog trace in
          r.Sim.delivered = 200 && r.Sim.dropped = 0)
        [ Sim.Mp5; Sim.Static_shard; Sim.No_d4; Sim.Naive_single; Sim.Ideal ])

let prop_transform_invariants =
  QCheck.Test.make ~name:"transformer invariants on random programs" ~count:120
    QCheck.(small_nat)
    (fun seed ->
      let _, t = compile_gen seed in
      let prog = Mp5_core.Transform.transform ~limits t.Compile.config in
      let module T = Mp5_core.Transform in
      let module C = Mp5_banzai.Config in
      (* Stage 0 is the empty address-resolution stage. *)
      let stage0 = prog.T.config.C.stages.(0) in
      let ok0 = stage0.C.atoms = [] && stage0.C.stateless = [] in
      (* Access ids are dense and stage-sorted; sharded arrays resolve. *)
      let ok_ids = ref true and last_stage = ref 0 in
      Array.iteri
        (fun i (a : T.access) ->
          if a.T.acc_id <> i || a.T.stage < !last_stage || a.T.stage < 1 then ok_ids := false;
          last_stage := a.T.stage;
          (match (prog.T.sharded.(a.T.reg), a.T.index) with
          | true, T.I_unresolved -> ok_ids := false
          | _ -> ()))
        prog.T.accesses;
      (* After serialization a stage holds one register array, unless its
         atoms' guards are pairwise mutually exclusive (a packet then
         still accesses at most one array there). *)
      let exclusive (atoms : Mp5_banzai.Atom.stateful list) =
        let excl a b =
          match ((a : Mp5_banzai.Atom.stateful).Mp5_banzai.Atom.guard, (b : Mp5_banzai.Atom.stateful).Mp5_banzai.Atom.guard) with
          | Some ga, Some gb ->
              Mp5_banzai.Simplify.pred (Expr.Binop (Expr.Log_and, ga, gb)) = Expr.Const 0
          | _ -> false
        in
        let rec pairs = function
          | [] -> true
          | a :: rest -> List.for_all (excl a) rest && pairs rest
        in
        pairs atoms
      in
      let ok_serial =
        Array.for_all
          (fun (s : C.stage) ->
            List.length (C.regs_of_stage s) <= 1 || exclusive s.C.atoms)
          prog.T.config.C.stages
      in
      ok0 && !ok_ids && ok_serial)

let prop_finite_fifo_accounting =
  QCheck.Test.make ~name:"finite FIFOs: every packet delivered or dropped" ~count:40
    QCheck.(small_nat)
    (fun seed ->
      let _, t = compile_gen seed in
      let prog = Mp5_core.Transform.transform ~limits t.Compile.config in
      let trace = gen_trace ~seed ~k:4 ~n:400 in
      let params =
        { (Sim.default_params ~k:4) with Sim.fifo_capacity = 2; adaptive_fifos = false }
      in
      let r = Sim.run params prog trace in
      r.Sim.delivered + r.Sim.dropped = 400
      && List.length r.Sim.headers_out = r.Sim.delivered)

let prop_recirc_k1_equivalent =
  QCheck.Test.make ~name:"re-circulation at k=1 degenerates to the single pipeline" ~count:40
    QCheck.(small_nat)
    (fun seed ->
      let src, t = compile_gen seed in
      let prog = Mp5_core.Transform.transform ~limits t.Compile.config in
      let trace = gen_trace ~seed ~k:1 ~n:200 in
      let golden = Machine.run t.Compile.config trace in
      let r = Mp5_core.Recirc.run ~k:1 prog trace in
      let rep =
        Equiv.compare ~golden ~n_packets:200 ~store:r.Mp5_core.Recirc.store
          ~headers_out:r.Mp5_core.Recirc.headers_out
          ~access_seqs:r.Mp5_core.Recirc.access_seqs
          ~exit_order:r.Mp5_core.Recirc.exit_order ()
      in
      if not (Equiv.equivalent rep) then
        QCheck.Test.fail_reportf "program:\n%s\n%s" src (Format.asprintf "%a" Equiv.pp rep);
      true)

(* One persistent team per job count, shared across all property
   iterations ([Team.create] registers an [at_exit] shutdown hook). *)
let par_teams = lazy (Array.map (fun jobs -> Mp5_util.Pool.Team.create ~jobs) [| 1; 2; 4; 8 |])

let prop_par_engine_bit_identical =
  (* The domain-parallel cycle engine is bit-identical to the sequential
     one for random programs at jobs in {1,2,4,8}; a fault plan closes
     the parallel gate and the automatic sequential fallback must be
     invisible; and a checkpoint taken under either engine resumes under
     the other onto the uninterrupted run's summary. *)
  QCheck.Test.make ~name:"parallel cycle engine bit-identical to sequential" ~count:100
    QCheck.(small_nat)
    (fun seed ->
      let src, t = compile_gen seed in
      let prog = Mp5_core.Transform.transform ~limits t.Compile.config in
      let k = 2 + (seed mod 4) in
      let trace = gen_trace ~seed ~k ~n:200 in
      let params = Sim.default_params ~k in
      let team = (Lazy.force par_teams).(seed mod 4) in
      let jobs = Mp5_util.Pool.Team.size team in
      let seq = Sim.run params prog trace in
      let par = Sim.run ~team params prog trace in
      if not (Sim.results_equal seq par) then
        QCheck.Test.fail_reportf "parallel engine (jobs=%d) diverges on:\n%s" jobs src;
      let plan =
        {
          Mp5_fault.Fault.seed = seed + 17;
          events = [ Mp5_fault.Fault.window ~from_:3 ~until_:50 (Mp5_fault.Fault.Xbar_drop 0.2) ];
        }
      in
      let fs = Sim.run ~fault:plan params prog trace in
      let fp = Sim.run ~team ~fault:plan params prog trace in
      if not (Sim.results_equal fs fp) then
        QCheck.Test.fail_reportf "faulted fallback (jobs=%d) diverges on:\n%s" jobs src;
      let want = Sim.summary_of_result ~packets:(Array.length trace) seq in
      let cross t1 t2 =
        match
          Sim.run_source ?team:t1 ~cycle_budget:30 params prog
            (Mp5_workload.Packet_source.of_array trace)
        with
        | Sim.Completed s -> s (* finished inside the budget; nothing to cross *)
        | Sim.Suspended snap -> (
            match
              Sim.resume ?team:t2 ~snapshot:snap prog
                (Mp5_workload.Packet_source.of_array trace)
            with
            | Ok (Sim.Completed s) -> s
            | Ok (Sim.Suspended _) -> QCheck.Test.fail_report "resume suspended without a budget"
            | Error _ -> QCheck.Test.fail_report "cross-engine resume rejected")
      in
      if not (Sim.summary_equal want (cross (Some team) None)) then
        QCheck.Test.fail_reportf "par checkpoint -> seq resume diverges (jobs=%d):\n%s" jobs
          src;
      if not (Sim.summary_equal want (cross None (Some team))) then
        QCheck.Test.fail_reportf "seq checkpoint -> par resume diverges (jobs=%d):\n%s" jobs
          src;
      true)

let prop_sim_deterministic =
  QCheck.Test.make ~name:"simulator runs are deterministic" ~count:25
    QCheck.(small_nat)
    (fun seed ->
      let _, t = compile_gen seed in
      let prog = Mp5_core.Transform.transform ~limits t.Compile.config in
      let trace = gen_trace ~seed ~k:3 ~n:300 in
      let run () = Sim.run (Sim.default_params ~k:3) prog trace in
      let a = run () and b = run () in
      a.Sim.exit_order = b.Sim.exit_order && Store.equal a.Sim.store b.Sim.store)

let prop_pretty_roundtrip =
  (* print . parse is a projection: printing a parsed program and parsing
     it again yields the same printed form (and the same compiled
     behaviour, covered by the interpreter property). *)
  QCheck.Test.make ~name:"pretty-printer round trip" ~count:150
    QCheck.(small_nat)
    (fun seed ->
      let src = Progen.generate seed in
      let once = Pretty.program_to_string (Parser.parse src) in
      let twice = Pretty.program_to_string (Parser.parse once) in
      if once <> twice then
        QCheck.Test.fail_reportf "not a fixpoint:\n%s\n----\n%s" once twice;
      true)

(* Random expression generator for direct simplifier checking (the
   program-level property only exercises compiler-shaped expressions). *)
let rec gen_rand_expr rng depth =
  let module E = Expr in
  if depth = 0 then
    match Rng.int rng 3 with
    | 0 -> E.Const (Rng.int rng 21 - 10)
    | 1 -> E.Field (Rng.int rng 4)
    | _ -> E.Const (Rng.int rng 3)
  else
    match Rng.int rng 10 with
    | 0 | 1 -> gen_rand_expr rng 0
    | 2 ->
        let ops =
          [| E.Add; E.Sub; E.Mul; E.Div; E.Mod; E.Bit_and; E.Bit_or; E.Bit_xor; E.Shl;
             E.Shr; E.Eq; E.Ne; E.Lt; E.Le; E.Gt; E.Ge; E.Log_and; E.Log_or |]
        in
        E.Binop (ops.(Rng.int rng 18), gen_rand_expr rng (depth - 1), gen_rand_expr rng (depth - 1))
    | 3 ->
        let ops = [| E.Neg; E.Log_not; E.Bit_not |] in
        E.Unop (ops.(Rng.int rng 3), gen_rand_expr rng (depth - 1))
    | 4 | 5 ->
        E.Ternary
          (gen_rand_expr rng (depth - 1), gen_rand_expr rng (depth - 1), gen_rand_expr rng (depth - 1))
    | 6 -> E.Hash [ gen_rand_expr rng (depth - 1) ]
    | _ ->
        E.Binop
          ( (if Rng.int rng 2 = 0 then E.Add else E.Mul),
            gen_rand_expr rng (depth - 1),
            gen_rand_expr rng 0 )

let prop_simplify_preserves_eval =
  QCheck.Test.make ~name:"simplification preserves evaluation" ~count:400
    QCheck.(small_nat)
    (fun seed ->
      let rng = Rng.create (seed + 31337) in
      let e = gen_rand_expr rng 4 in
      let simplified = Mp5_banzai.Simplify.expr e in
      let pred_form = Mp5_banzai.Simplify.pred e in
      List.for_all
        (fun _ ->
          let fields = Array.init 4 (fun _ -> Rng.int rng 64 - 16) in
          let v = Expr.eval ~fields ~state:None e in
          let v' = Expr.eval ~fields ~state:None simplified in
          let tp = Expr.truthy (Expr.eval ~fields ~state:None pred_form) in
          if v <> v' then
            QCheck.Test.fail_reportf "value change:@.%a@.->@.%a@.fields %d %d %d %d: %d vs %d"
              Expr.pp e Expr.pp simplified fields.(0) fields.(1) fields.(2) fields.(3) v v';
          if tp <> Expr.truthy v then
            QCheck.Test.fail_reportf "truthiness change:@.%a@.->@.%a" Expr.pp e Expr.pp
              pred_form;
          true)
        (List.init 25 Fun.id))

let prop_simplify_never_grows =
  QCheck.Test.make ~name:"simplification never grows expressions" ~count:300
    QCheck.(small_nat)
    (fun seed ->
      let rng = Rng.create (seed + 555) in
      let e = gen_rand_expr rng 4 in
      Expr.size (Mp5_banzai.Simplify.expr e) <= Expr.size e)

let prop_ring_buffer_model =
  (* Ring buffer behaves like a bounded queue. *)
  QCheck.Test.make ~name:"ring buffer = bounded queue model" ~count:200
    QCheck.(list (QCheck.int_range 0 9))
    (fun ops ->
      let rb = Mp5_util.Ring_buffer.create ~capacity:4 in
      let model = Queue.create () in
      List.for_all
        (fun op ->
          if op < 6 then begin
            let accepted = Mp5_util.Ring_buffer.push rb op in
            let model_accepts = Queue.length model < 4 in
            if model_accepts then Queue.push op model;
            accepted = model_accepts
          end
          else
            match (Mp5_util.Ring_buffer.pop rb, Queue.take_opt model) with
            | None, None -> true
            | Some a, Some b -> a = b
            | _ -> false)
        ops)

let prop_int_table_model =
  (* Open addressing with backward-shift deletion behaves like Hashtbl;
     a small key range forces probe-chain collisions and deletions in
     the middle of chains. *)
  QCheck.Test.make ~name:"Int_table = Hashtbl model" ~count:200 QCheck.small_nat
    (fun seed ->
      let rng = Rng.create (seed + 909) in
      let t = Mp5_util.Int_table.create () in
      let h : (int, int) Hashtbl.t = Hashtbl.create 16 in
      let find_opt key =
        match Mp5_util.Int_table.find t key with
        | v -> Some v
        | exception Not_found -> None
      in
      let ok = ref true in
      for _ = 1 to 400 do
        let key = Rng.int rng 48 - 8 in
        match Rng.int rng 4 with
        | 0 | 1 ->
            let v = Rng.int rng 1000 in
            Mp5_util.Int_table.replace t key v;
            Hashtbl.replace h key v
        | 2 ->
            Mp5_util.Int_table.remove t key;
            Hashtbl.remove h key
        | _ -> if find_opt key <> Hashtbl.find_opt h key then ok := false
      done;
      for key = -8 to 40 do
        if find_opt key <> Hashtbl.find_opt h key then ok := false
      done;
      !ok && Mp5_util.Int_table.length t = Hashtbl.length h)

let prop_sort_trace_sorted =
  QCheck.Test.make ~name:"sort_trace orders by (time, port)" ~count:200
    QCheck.(list (pair (QCheck.int_range 0 20) (QCheck.int_range 0 7)))
    (fun pairs ->
      let trace =
        Array.of_list (List.map (fun (t, p) -> { Machine.time = t; port = p; headers = [||] }) pairs)
      in
      let sorted = Machine.sort_trace trace in
      let ok = ref true in
      Array.iteri
        (fun i x ->
          if i > 0 then begin
            let prev = sorted.(i - 1) in
            if
              prev.Machine.time > x.Machine.time
              || (prev.Machine.time = x.Machine.time && prev.Machine.port > x.Machine.port)
            then ok := false
          end)
        sorted;
      !ok && Array.length sorted = Array.length trace)

let prop_expr_eval_in_range =
  (* Every evaluation result is a valid signed 32-bit value. *)
  QCheck.Test.make ~name:"expression evaluation stays in 32-bit range" ~count:300
    QCheck.(triple int int (QCheck.int_range 0 17))
    (fun (a, b, opn) ->
      let op =
        List.nth
          [ Expr.Add; Expr.Sub; Expr.Mul; Expr.Div; Expr.Mod; Expr.Bit_and; Expr.Bit_or;
            Expr.Bit_xor; Expr.Shl; Expr.Shr; Expr.Eq; Expr.Ne; Expr.Lt; Expr.Le; Expr.Gt;
            Expr.Ge; Expr.Log_and; Expr.Log_or ]
          opn
      in
      let v =
        Expr.eval ~fields:[||] ~state:None
          (Expr.Binop (op, Expr.Const (Expr.norm32 a), Expr.Const (Expr.norm32 b)))
      in
      v >= -2147483648 && v <= 2147483647)

let prop_dist_in_support =
  QCheck.Test.make ~name:"discrete sampling stays in support" ~count:100
    QCheck.(pair (QCheck.int_range 1 40) (QCheck.int_range 0 1000))
    (fun (n, seed) ->
      let rng = Rng.create seed in
      let d = Mp5_util.Dist.skewed ~n ~hot_fraction:0.3 ~hot_mass:0.95 in
      List.for_all (fun _ -> let v = Mp5_util.Dist.sample rng d in v >= 0 && v < n) (List.init 50 Fun.id))

let () =
  let q = List.map (QCheck_alcotest.to_alcotest ~long:false) in
  Alcotest.run "properties"
    [
      ("compiler", q [ prop_compiler_matches_interpreter ]);
      ( "mp5",
        q
          [
            prop_mp5_equivalent;
            prop_mp5_modes_deliver_everything;
            prop_transform_invariants;
            prop_finite_fifo_accounting;
            prop_recirc_k1_equivalent;
            prop_par_engine_bit_identical;
            prop_sim_deterministic;
          ] );
      ("pretty", q [ prop_pretty_roundtrip ]);
      ("simplify", q [ prop_simplify_preserves_eval; prop_simplify_never_grows ]);
      ( "structures",
        q [ prop_ring_buffer_model; prop_int_table_model; prop_sort_trace_sorted;
            prop_expr_eval_in_range;
            prop_dist_in_support ] );
    ]
