(* Unit tests for the expression simplifier: every rule exact under the
   32-bit semantics (the property suite checks end-to-end equivalence on
   random programs; these pin individual rewrites). *)

module Expr = Mp5_banzai.Expr
module Simplify = Mp5_banzai.Simplify
open Expr

let e = Alcotest.testable Expr.pp Expr.equal
let check_e name expected input = Alcotest.check e name expected (Simplify.expr input)
let check_p name expected input = Alcotest.check e name expected (Simplify.pred input)

let f0 = Field 0
let f1 = Field 1

let test_const_folding () =
  check_e "add" (Const 5) (Binop (Add, Const 2, Const 3));
  check_e "wraps" (Const (-2147483648)) (Binop (Add, Const 2147483647, Const 1));
  check_e "div by zero total" (Const 0) (Binop (Div, Const 7, Const 0));
  check_e "neg" (Const (-4)) (Unop (Neg, Const 4));
  check_e "comparison" (Const 1) (Binop (Lt, Const 1, Const 2));
  check_e "nested" (Const 9) (Binop (Mul, Const 3, Binop (Add, Const 1, Const 2)))

let test_identities () =
  check_e "x+0" f0 (Binop (Add, f0, Const 0));
  check_e "0+x" f0 (Binop (Add, Const 0, f0));
  check_e "x-0" f0 (Binop (Sub, f0, Const 0));
  check_e "x*1" f0 (Binop (Mul, f0, Const 1));
  check_e "1*x" f0 (Binop (Mul, Const 1, f0));
  check_e "x*0" (Const 0) (Binop (Mul, f0, Const 0));
  check_e "x/1" f0 (Binop (Div, f0, Const 1));
  check_e "x^0" f0 (Binop (Bit_xor, f0, Const 0));
  check_e "x|0" f0 (Binop (Bit_or, f0, Const 0));
  check_e "x<<0" f0 (Binop (Shl, f0, Const 0))

let test_unsafe_identities_kept () =
  (* x && 1 normalises x to 0/1: cannot drop for non-boolean x. *)
  let expr_and = Binop (Log_and, f0, Const 1) in
  Alcotest.check e "x&&1 kept for value use" expr_and (Simplify.expr expr_and);
  (* e - state is not additive; also not an identity candidate. *)
  let sub = Binop (Sub, Const 0, f0) in
  Alcotest.check e "0-x kept" sub (Simplify.expr sub)

let test_ternary () =
  check_e "const cond true" f0 (Ternary (Const 1, f0, f1));
  check_e "const cond false" f1 (Ternary (Const 0, f0, f1));
  check_e "equal arms" f0 (Ternary (f1, f0, f0));
  check_e "not rotation" (Ternary (f0, f1, Const 3))
    (Ternary (Unop (Log_not, f0), Const 3, f1));
  (* Dead arm: inner selection on the same condition. *)
  check_e "same-cond chain" (Ternary (f0, Const 1, Const 2))
    (Ternary (f0, Ternary (f0, Const 1, Const 9), Const 2));
  (* Complementary comparisons. *)
  check_e "complementary chain"
    (Ternary (Binop (Lt, f0, Const 5), Const 1, Const 2))
    (Ternary
       ( Binop (Lt, f0, Const 5),
         Const 1,
         Ternary (Binop (Ge, f0, Const 5), Const 2, Const 9) ))

let test_assume_under_arithmetic () =
  (* (c ? (c ? a : b) + 2 : d): the inner ternary sits under an Add. *)
  check_e "collapses through arithmetic"
    (Ternary (f0, Const 3, f1))
    (Ternary (f0, Binop (Add, Ternary (f0, Const 1, Const 9), Const 2), f1))

let test_assume_value_safety () =
  (* f0 is not 0/1-valued: in a VALUE position of the then-arm it must
     not become 1, but on the false side it is exactly 0. *)
  let t = Ternary (f0, f0, Const 5) in
  Alcotest.check e "truthy value not forced to 1" t (Simplify.expr t);
  check_e "falsy value is 0" (Ternary (f0, Const 7, Const 0)) (Ternary (f0, Const 7, f0));
  (* In a truthiness context the then-side substitution is legal; the
     remaining [1 && f1] cannot drop to [f1] (f1 is not 0/1-valued). *)
  check_e "truthiness context"
    (Ternary (f0, Binop (Log_and, Const 1, f1), Const 0))
    (Ternary (f0, Binop (Log_and, f0, f1), Const 0))

let test_boolean_double_negation () =
  let cmp = Binop (Eq, f0, Const 1) in
  check_e "!! of comparison" cmp (Unop (Log_not, Unop (Log_not, cmp)));
  let raw = Unop (Log_not, Unop (Log_not, f0)) in
  Alcotest.check e "!! of raw int kept" raw (Simplify.expr raw)

let test_pred_rules () =
  check_p "x || !x" (Const 1) (Binop (Log_or, f0, Unop (Log_not, f0)));
  check_p "x || x" f0 (Binop (Log_or, f0, f0));
  check_p "x && !x" (Const 0) (Binop (Log_and, f0, Unop (Log_not, f0)));
  check_p "lt || ge" (Const 1)
    (Binop (Log_or, Binop (Lt, f0, f1), Binop (Ge, f0, f1)));
  (* Factoring + absorption: (a&&b) || (a&&!b) || !a = 1. *)
  check_p "guard disjunction collapses" (Const 1)
    (Binop
       ( Log_or,
         Binop (Log_or, Binop (Log_and, f0, f1), Binop (Log_and, f0, Unop (Log_not, f1))),
         Unop (Log_not, f0) ));
  check_p "absorption" f0 (Binop (Log_or, f0, Binop (Log_and, f0, f1)))

let test_hash_folding () =
  let h = Hash [ Const 1; Const 2 ] in
  (match Simplify.expr h with
  | Const v ->
      Alcotest.(check int) "hash of constants folds"
        (Expr.eval ~fields:[||] ~state:None h)
        v
  | _ -> Alcotest.fail "expected folded constant");
  Alcotest.check e "hash with field kept" (Hash [ f0 ]) (Simplify.expr (Hash [ f0 ]))

let test_guard_simplification_in_atoms () =
  let atom =
    Mp5_banzai.Atom.stateful ~reg:0 ~index:(Const 0)
      ~guard:(Binop (Log_or, f0, Unop (Log_not, f0)))
      ~update:(Binop (Add, State_val, Const 0))
      ()
  in
  let a = Simplify.stateful atom in
  Alcotest.(check bool) "tautological guard removed" true (a.Mp5_banzai.Atom.guard = None);
  Alcotest.check e "update identity removed" State_val (Option.get a.Mp5_banzai.Atom.update);
  (* Constant-false guards survive: they encode "never accesses". *)
  let never =
    Mp5_banzai.Atom.stateful ~reg:0 ~index:(Const 0)
      ~guard:(Binop (Log_and, f0, Unop (Log_not, f0)))
      ()
  in
  Alcotest.(check bool) "false guard kept" true
    ((Simplify.stateful never).Mp5_banzai.Atom.guard = Some (Const 0))

let test_fixpoint_terminates () =
  (* A deliberately gnarly expression: simplification terminates and is
     idempotent. *)
  let rec build n = if n = 0 then f0 else Ternary (f1, Binop (Add, build (n - 1), Const 0), build (n - 1)) in
  let big = build 6 in
  let once = Simplify.expr big in
  Alcotest.check e "idempotent" once (Simplify.expr once)

let () =
  Alcotest.run "simplify"
    [
      ( "value rules",
        [
          Alcotest.test_case "constant folding" `Quick test_const_folding;
          Alcotest.test_case "identities" `Quick test_identities;
          Alcotest.test_case "unsafe identities kept" `Quick test_unsafe_identities_kept;
          Alcotest.test_case "ternary" `Quick test_ternary;
          Alcotest.test_case "assume under arithmetic" `Quick test_assume_under_arithmetic;
          Alcotest.test_case "assume value safety" `Quick test_assume_value_safety;
          Alcotest.test_case "double negation" `Quick test_boolean_double_negation;
          Alcotest.test_case "hash folding" `Quick test_hash_folding;
        ] );
      ( "predicates and atoms",
        [
          Alcotest.test_case "predicate rules" `Quick test_pred_rules;
          Alcotest.test_case "atom guards" `Quick test_guard_simplification_in_atoms;
          Alcotest.test_case "fixpoint" `Quick test_fixpoint_terminates;
        ] );
    ]
