(* The domain pool must be a drop-in for sequential maps: same order,
   same exceptions, same simulation numbers at any job count. *)

module Pool = Mp5_util.Pool
module Sim = Mp5_core.Sim
module Switch = Mp5_core.Switch
module Store = Mp5_banzai.Store

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let with_pool ~jobs f =
  let p = Pool.create ~jobs in
  Fun.protect ~finally:(fun () -> Pool.shutdown p) (fun () -> f p)

let test_map_ordering () =
  with_pool ~jobs:4 (fun p ->
      let n = 1000 in
      let out = Pool.map_array p (fun x -> x * x) (Array.init n Fun.id) in
      Alcotest.(check (array int)) "squares in order" (Array.init n (fun i -> i * i)) out;
      let lst = Pool.map_list p string_of_int [ 5; 3; 9; 1 ] in
      Alcotest.(check (list string)) "list order" [ "5"; "3"; "9"; "1" ] lst;
      let ini = Pool.init p 17 (fun i -> 2 * i) in
      Alcotest.(check (array int)) "init" (Array.init 17 (fun i -> 2 * i)) ini)

let test_jobs_one_inline () =
  (* jobs = 1 must not spawn domains and still satisfy the same API. *)
  with_pool ~jobs:1 (fun p ->
      check_int "size" 1 (Pool.size p);
      let out = Pool.map_array p succ [| 1; 2; 3 |] in
      Alcotest.(check (array int)) "inline map" [| 2; 3; 4 |] out)

exception Boom of int

let test_exception_propagation () =
  with_pool ~jobs:4 (fun p ->
      (* Several tasks fail; the smallest failing index must win, so the
         caller sees a deterministic error regardless of scheduling. *)
      let raised =
        try
          ignore
            (Pool.map_array p
               (fun x -> if x mod 7 = 3 then raise (Boom x) else x)
               (Array.init 100 Fun.id));
          None
        with Boom x -> Some x
      in
      Alcotest.(check (option int)) "lowest failing index" (Some 3) raised;
      (* The pool survives a failed map. *)
      let out = Pool.map_array p succ [| 10; 20 |] in
      Alcotest.(check (array int)) "pool alive after failure" [| 11; 21 |] out)

let test_map_array_result () =
  with_pool ~jobs:4 (fun p ->
      (* Per-task failure surface: raising tasks come back as [Error]
         without poisoning their neighbours, and every non-raising task
         still completes with its value. *)
      let rs =
        Pool.map_array_result p
          (fun x -> if x mod 7 = 3 then raise (Boom x) else x * 10)
          (Array.init 30 Fun.id)
      in
      check_int "all results present" 30 (Array.length rs);
      Array.iteri
        (fun i r ->
          match r with
          | Ok v ->
              check "ok only at non-raising index" true (i mod 7 <> 3);
              check_int "value" (i * 10) v
          | Error (Boom x, _) ->
              check "error only at raising index" true (i mod 7 = 3);
              check_int "error carries its index" i x
          | Error (exn, _) -> Alcotest.failf "unexpected exception %s" (Printexc.to_string exn))
        rs;
      (* The pool survives and the sequential (jobs-irrelevant) path
         agrees shape-for-shape. *)
      let seq =
        Pool.map_array_result p (fun x -> if x = 0 then raise (Boom 0) else x) [| 0 |]
      in
      check "sequential path also catches" true
        (match seq.(0) with Error (Boom 0, _) -> true | _ -> false))

let test_invalid_jobs () =
  check "jobs=0 rejected" true
    (try
       ignore (Pool.create ~jobs:0);
       false
     with Invalid_argument _ -> true)

let test_shutdown_inline () =
  let p = Pool.create ~jobs:3 in
  Pool.shutdown p;
  Pool.shutdown p;
  (* idempotent *)
  let out = Pool.map_array p succ [| 1; 2 |] in
  Alcotest.(check (array int)) "post-shutdown maps run inline" [| 2; 3 |] out

let test_quiesce_respawn () =
  (* Quiesce joins the workers but keeps the pool usable: the next map
     respawns them lazily and behaves identically. *)
  with_pool ~jobs:4 (fun p ->
      let a = Pool.map_array p succ [| 1; 2; 3 |] in
      Pool.quiesce p;
      Pool.quiesce p;
      (* idempotent *)
      let b = Pool.map_array p succ [| 1; 2; 3 |] in
      Alcotest.(check (array int)) "before quiesce" [| 2; 3; 4 |] a;
      Alcotest.(check (array int)) "workers respawn after quiesce" [| 2; 3; 4 |] b)

(* --- cycle-engine teams --- *)

let with_team ~jobs f =
  let tm = Pool.Team.create ~jobs in
  Fun.protect ~finally:(fun () -> Pool.Team.shutdown tm) (fun () -> f tm)

let test_team_fan_out () =
  with_team ~jobs:4 (fun tm ->
      check_int "size" 4 (Pool.Team.size tm);
      (* hits.(j) is only ever written by member j, so no synchronisation
         is needed beyond the round barrier [run] provides. *)
      let hits = Array.make 4 0 in
      for _ = 1 to 50 do
        Pool.Team.run tm (fun j -> hits.(j) <- hits.(j) + 1)
      done;
      Alcotest.(check (array int)) "every member runs every round" (Array.make 4 50) hits)

let test_team_jobs_one_inline () =
  with_team ~jobs:1 (fun tm ->
      check_int "size" 1 (Pool.Team.size tm);
      let ran = ref 0 in
      Pool.Team.run tm (fun j ->
          check_int "only member 0" 0 j;
          incr ran);
      check_int "ran inline" 1 !ran)

let test_team_exception_propagation () =
  with_team ~jobs:4 (fun tm ->
      let raised =
        try
          Pool.Team.run tm (fun j -> if j >= 2 then raise (Boom j));
          None
        with Boom j -> Some j
      in
      Alcotest.(check (option int)) "smallest member index wins" (Some 2) raised;
      (* The team survives a failed round. *)
      let sum = Atomic.make 0 in
      Pool.Team.run tm (fun j -> ignore (Atomic.fetch_and_add sum j));
      check_int "team alive after failure" 6 (Atomic.get sum))

let test_team_shutdown_idempotent () =
  let tm = Pool.Team.create ~jobs:3 in
  Pool.Team.shutdown tm;
  Pool.Team.shutdown tm;
  let hit = ref 0 in
  Pool.Team.run tm (fun j -> if j = 0 then incr hit);
  check_int "post-shutdown runs member 0 inline" 1 !hit

(* --- simulator determinism under the pool --- *)

let heavy_trace ~seed =
  Mp5_workload.Tracegen.sensitivity
    {
      Mp5_workload.Tracegen.n_packets = 2_000;
      k = 4;
      pkt_bytes = 64;
      n_fields = 2;
      index_fields = [ 0 ];
      reg_size = 512;
      pattern = Mp5_workload.Tracegen.Skewed;
      n_ports = 64;
      seed;
    }

let run_one sw seed =
  let r = Switch.run ~k:4 sw (heavy_trace ~seed) in
  (r.Sim.normalized_throughput, r.Sim.exit_order, r.Sim.delivered, r.Sim.store)

let test_sim_deterministic_repeat () =
  (* The same trace twice through the simulator gives identical results —
     the precondition for comparing sequential and parallel runs at all. *)
  let sw = Switch.create_exn Mp5_apps.Sources.heavy_hitter in
  let t1, o1, d1, s1 = run_one sw 42 in
  let t2, o2, d2, s2 = run_one sw 42 in
  check "throughput" true (t1 = t2);
  check "exit order" true (o1 = o2);
  check_int "delivered" d1 d2;
  check "store" true (Store.equal s1 s2)

let test_sim_parallel_matches_sequential () =
  (* The tentpole invariant: pool-parallel experiment runs produce the
     same numbers as the sequential loop, element for element. *)
  let sw = Switch.create_exn Mp5_apps.Sources.heavy_hitter in
  let seeds = Array.init 6 (fun i -> 100 + i) in
  let seq = Array.map (run_one sw) seeds in
  with_pool ~jobs:4 (fun p ->
      let par = Pool.map_array p (run_one sw) seeds in
      Array.iteri
        (fun i (t, o, d, s) ->
          let t', o', d', s' = par.(i) in
          check "throughput" true (t = t');
          check "exit order" true (o = o');
          check_int "delivered" d d';
          check "store" true (Store.equal s s'))
        seq)

let () =
  Alcotest.run "pool"
    [
      ( "pool",
        [
          Alcotest.test_case "map ordering" `Quick test_map_ordering;
          Alcotest.test_case "jobs=1 runs inline" `Quick test_jobs_one_inline;
          Alcotest.test_case "exception propagation" `Quick test_exception_propagation;
          Alcotest.test_case "per-task results" `Quick test_map_array_result;
          Alcotest.test_case "invalid jobs rejected" `Quick test_invalid_jobs;
          Alcotest.test_case "shutdown is idempotent" `Quick test_shutdown_inline;
          Alcotest.test_case "quiesce keeps the pool usable" `Quick test_quiesce_respawn;
        ] );
      ( "team",
        [
          Alcotest.test_case "run fans out to every member" `Quick test_team_fan_out;
          Alcotest.test_case "jobs=1 runs inline" `Quick test_team_jobs_one_inline;
          Alcotest.test_case "exception propagation" `Quick test_team_exception_propagation;
          Alcotest.test_case "shutdown is idempotent" `Quick test_team_shutdown_idempotent;
        ] );
      ( "determinism",
        [
          Alcotest.test_case "same trace, same result" `Quick test_sim_deterministic_repeat;
          Alcotest.test_case "parallel = sequential" `Quick
            test_sim_parallel_matches_sequential;
        ] );
    ]
