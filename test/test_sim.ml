(* Integration tests for the MP5 cycle-level simulator: functional
   equivalence, fundamental limits, invariants, drops, knobs. *)

module Sim = Mp5_core.Sim
module Switch = Mp5_core.Switch
module Equiv = Mp5_core.Equiv
module Machine = Mp5_banzai.Machine
module Store = Mp5_banzai.Store
module Rng = Mp5_util.Rng

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let line_rate_trace ~k ~n ~fields gen =
  Array.init n (fun i ->
      { Machine.time = i / k; port = i mod k; headers = Array.init fields (gen i) })

let verify ?params ~k sw trace =
  let r, rep = Switch.verify ?params ~k sw trace in
  (r, rep)

let test_sequencer_equivalence () =
  let sw = Switch.create_exn Mp5_apps.Sources.sequencer in
  let rng = Rng.create 1 in
  let trace = line_rate_trace ~k:4 ~n:3000 ~fields:2 (fun _ _ -> Rng.int rng 8) in
  let r, rep = verify ~k:4 sw trace in
  check "equivalent" true (Equiv.equivalent rep);
  check_int "no violations" 0 rep.Equiv.c1_violations;
  check_int "all delivered" 3000 r.Sim.delivered

let test_all_apps_equivalent_all_ks () =
  List.iter
    (fun (name, src) ->
      let sw = Switch.create_exn src in
      List.iter
        (fun k ->
          let pkts = Mp5_workload.Tracegen.flows ~seed:3 ~n_packets:2000 ~k ~concurrency:32 () in
          let trace = Mp5_apps.Traces.trace_for name pkts in
          let _, rep = verify ~k sw trace in
          if not (Equiv.equivalent rep) then
            Alcotest.failf "%s not equivalent at k=%d: %s" name k
              (Format.asprintf "%a" Equiv.pp rep))
        [ 1; 2; 3; 4; 8 ])
    Mp5_apps.Sources.all_named

let test_global_counter_limit () =
  (* A single cell accessed by every packet caps throughput at 1/k. *)
  let sw = Switch.create_exn Mp5_apps.Sources.packet_counter in
  let trace = line_rate_trace ~k:4 ~n:4000 ~fields:1 (fun _ _ -> 0) in
  let r, rep = verify ~k:4 sw trace in
  check "equivalent" true (Equiv.equivalent rep);
  check "throughput ~ 1/k" true (abs_float (r.Sim.normalized_throughput -. 0.25) < 0.02)

let test_stateless_line_rate () =
  let sw =
    Switch.create_exn
      "struct Packet { int a; int b; };\nvoid func(struct Packet p) { p.a = p.a + p.b; }"
  in
  let rng = Rng.create 2 in
  let trace = line_rate_trace ~k:8 ~n:4000 ~fields:2 (fun _ _ -> Rng.int rng 100) in
  let r, rep = verify ~k:8 sw trace in
  check "equivalent" true (Equiv.equivalent rep);
  check "line rate" true (r.Sim.normalized_throughput > 0.999);
  check_int "never queued (Invariant 2)" 0 r.Sim.max_queue

let test_k1_trivially_equivalent () =
  let sw = Switch.create_exn Mp5_apps.Sources.figure3 in
  let rng = Rng.create 3 in
  let trace = line_rate_trace ~k:1 ~n:500 ~fields:5 (fun _ _ -> Rng.int rng 4) in
  let r, rep = verify ~k:1 sw trace in
  check "equivalent" true (Equiv.equivalent rep);
  check "line rate at k=1" true (r.Sim.normalized_throughput > 0.99)

let test_no_d4_violates () =
  (* Reordering needs at least two stateful stages: queueing variance at
     the first lets packets overtake each other before the second. *)
  let sw = Switch.create_exn (Mp5_apps.Sources.sensitivity_program ~stateful:2 ~reg_size:4) in
  let rng = Rng.create 4 in
  let trace = line_rate_trace ~k:4 ~n:4000 ~fields:4 (fun _ _ -> Rng.int rng 4) in
  let params = { (Sim.default_params ~k:4) with Sim.mode = Sim.No_d4 } in
  let _, rep = verify ~params ~k:4 sw trace in
  check "C1 violated without D4" true (rep.Equiv.c1_violations > 0);
  (* The updates are non-commutative, so order violations corrupt the
     final register state. *)
  check "not equivalent" false (Equiv.equivalent rep)

let test_naive_single_throughput () =
  let sw = Switch.create_exn Mp5_apps.Sources.heavy_hitter in
  let rng = Rng.create 5 in
  let trace = line_rate_trace ~k:4 ~n:4000 ~fields:2 (fun _ _ -> Rng.int rng 100000) in
  let params = { (Sim.default_params ~k:4) with Sim.mode = Sim.Naive_single } in
  let r, rep = verify ~params ~k:4 sw trace in
  check "equivalent (just slow)" true (Equiv.equivalent rep);
  check "1/k throughput" true (abs_float (r.Sim.normalized_throughput -. 0.25) < 0.02)

let test_ideal_equivalent_and_fast () =
  let sw = Switch.create_exn Mp5_apps.Sources.heavy_hitter in
  let rng = Rng.create 6 in
  let trace = line_rate_trace ~k:4 ~n:6000 ~fields:2 (fun _ _ -> Rng.int rng 100000) in
  let params = { (Sim.default_params ~k:4) with Sim.mode = Sim.Ideal } in
  let r, rep = verify ~params ~k:4 sw trace in
  check "equivalent" true (Equiv.equivalent rep);
  check "close to line rate" true (r.Sim.normalized_throughput > 0.9)

let test_static_shard_equivalent () =
  let sw = Switch.create_exn Mp5_apps.Sources.heavy_hitter in
  let rng = Rng.create 7 in
  let trace = line_rate_trace ~k:4 ~n:4000 ~fields:2 (fun _ _ -> Rng.int rng 100000) in
  let params =
    { (Sim.default_params ~k:4) with Sim.mode = Sim.Static_shard; shard_init = `Random 9 }
  in
  let _, rep = verify ~params ~k:4 sw trace in
  check "static sharding keeps correctness" true (Equiv.equivalent rep)

let test_finite_fifo_drops () =
  let sw = Switch.create_exn Mp5_apps.Sources.packet_counter in
  let trace = line_rate_trace ~k:4 ~n:4000 ~fields:1 (fun _ _ -> 0) in
  let params =
    { (Sim.default_params ~k:4) with Sim.fifo_capacity = 4; adaptive_fifos = false }
  in
  let r = Switch.run ~params ~k:4 sw trace in
  check "drops under overload" true (r.Sim.dropped > 0);
  check_int "every packet accounted" 4000 (r.Sim.delivered + r.Sim.dropped);
  (* Delivered packets must still be correctly sequenced: the golden
     prefix property does not hold under drops, but the exit headers must
     be gapless per the surviving access order. *)
  let seqnos = List.map (fun (_, h) -> h.(0)) r.Sim.headers_out in
  let sorted = List.sort compare seqnos in
  check "sequencer outputs strictly increasing set" true
    (List.length (List.sort_uniq compare sorted) = List.length sorted)

let test_adaptive_fifo_no_drops () =
  let sw = Switch.create_exn Mp5_apps.Sources.packet_counter in
  let trace = line_rate_trace ~k:4 ~n:3000 ~fields:1 (fun _ _ -> 0) in
  let r = Switch.run ~k:4 sw trace in
  check_int "no drops" 0 r.Sim.dropped

let test_ecn_marking () =
  let sw = Switch.create_exn Mp5_apps.Sources.packet_counter in
  let trace = line_rate_trace ~k:4 ~n:2000 ~fields:1 (fun _ _ -> 0) in
  let params = { (Sim.default_params ~k:4) with Sim.ecn_threshold = Some 4 } in
  let r = Switch.run ~params ~k:4 sw trace in
  check "marks under congestion" true (r.Sim.marked > 0);
  let params2 = { (Sim.default_params ~k:4) with Sim.ecn_threshold = Some 1_000_000 } in
  let r2 = Switch.run ~params:params2 ~k:4 sw trace in
  check_int "no marks under huge threshold" 0 r2.Sim.marked

let test_latencies_positive () =
  let sw = Switch.create_exn Mp5_apps.Sources.sequencer in
  let rng = Rng.create 8 in
  let trace = line_rate_trace ~k:2 ~n:500 ~fields:2 (fun _ _ -> Rng.int rng 8) in
  let r = Switch.run ~k:2 sw trace in
  let stages = Array.length sw.Switch.prog.Mp5_core.Transform.config.Mp5_banzai.Config.stages in
  List.iter
    (fun (_, lat) -> check "latency at least pipeline depth" true (lat >= stages - 1))
    r.Sim.latencies

let test_determinism () =
  let sw = Switch.create_exn Mp5_apps.Sources.conga in
  let pkts = Mp5_workload.Tracegen.flows ~seed:11 ~n_packets:2000 ~k:4 ~concurrency:32 () in
  let trace = Mp5_apps.Traces.trace_for "conga" pkts in
  let r1 = Switch.run ~k:4 sw trace in
  let r2 = Switch.run ~k:4 sw trace in
  check "same exit order" true (r1.Sim.exit_order = r2.Sim.exit_order);
  check "same store" true (Store.equal r1.Sim.store r2.Sim.store);
  check "same throughput" true (r1.Sim.normalized_throughput = r2.Sim.normalized_throughput)

let test_unresolvable_programs_equivalent () =
  (* Programs exercising the conservative paths stay equivalent. *)
  List.iter
    (fun name ->
      let sw = Switch.create_exn (List.assoc name Mp5_apps.Sources.all_named) in
      let rng = Rng.create 12 in
      let fields = (Switch.config sw).Mp5_banzai.Config.n_user_fields in
      let trace = line_rate_trace ~k:4 ~n:3000 ~fields (fun _ _ -> Rng.int rng 64) in
      let _, rep = verify ~k:4 sw trace in
      if not (Equiv.equivalent rep) then
        Alcotest.failf "%s: %s" name (Format.asprintf "%a" Equiv.pp rep))
    [ "ddos"; "pointer_chase"; "firewall" ]

let test_stateless_priority_off_still_equivalent () =
  let sw = Switch.create_exn Mp5_apps.Sources.firewall in
  let rng = Rng.create 13 in
  let trace = line_rate_trace ~k:4 ~n:3000 ~fields:4 (fun _ f -> if f = 2 then Rng.int rng 2 else Rng.int rng 32) in
  let params = { (Sim.default_params ~k:4) with Sim.stateless_priority = false } in
  let _, rep = verify ~params ~k:4 sw trace in
  check "correctness unaffected by priority ablation" true (Equiv.equivalent rep)

let test_starvation_guard_drops_stateless () =
  (* All packets hit one counter cell; interleave stateless-only packets
     (guard false) that would otherwise always win the stage slot. *)
  let sw =
    Switch.create_exn
      {|
struct Packet { int stateful; int out; };
int count;
void func(struct Packet p) {
    if (p.stateful == 1) { count = count + 1; p.out = count; }
}
|}
  in
  let trace = line_rate_trace ~k:4 ~n:4000 ~fields:2 (fun i f -> if f = 0 then i land 1 else 0) in
  let params = { (Sim.default_params ~k:4) with Sim.starvation_threshold = Some 10 } in
  let r = Switch.run ~params ~k:4 sw trace in
  check "stateless victims recorded" true (r.Sim.dropped_stateless > 0);
  check_int "drops accounted" 4000 (r.Sim.delivered + r.Sim.dropped)

(* NAT-style program: only SYN packets are stateful; followers are pure
   pass-through and can overtake their flow's queued SYN under Invariant
   2's stateless priority. *)
let nat_src =
  {|
struct Packet { int src; int dst; int syn; int out; };
int nat[4];
void func(struct Packet p) {
    if (p.syn == 1) {
        nat[hash(p.src, p.dst) % 4] = nat[hash(p.src, p.dst) % 4] + p.src;
    }
}
|}

let nat_trace ~k ~n =
  let rng = Rng.create 21 in
  (* Many short flows: first packet is the SYN. *)
  Array.init n (fun i ->
      let flow = i / 4 in
      let seq_in_flow = i mod 4 in
      ignore (Rng.int rng 2);
      {
        Machine.time = i / k;
        port = i mod k;
        headers = [| flow * 7; flow * 13; (if seq_in_flow = 0 then 1 else 0); 0 |];
      })

let test_flow_reordering_without_dummy_stage () =
  let sw = Switch.create_exn nat_src in
  let n = 4000 in
  let trace = nat_trace ~k:4 ~n in
  let flow_of seq = seq / 4 in
  let _, rep = Switch.verify ~k:4 ~flow_of sw trace in
  check "still functionally equivalent" true (Equiv.equivalent rep);
  check "but flows reorder" true (rep.Equiv.reordered_flows > 0)

let test_flow_order_dummy_stage_fixes_reordering () =
  let flow_order =
    (Mp5_banzai.Expr.Hash [ Mp5_banzai.Expr.Field 0; Mp5_banzai.Expr.Field 1 ], 1024)
  in
  let sw = Switch.create_exn ~flow_order nat_src in
  let n = 4000 in
  let trace = nat_trace ~k:4 ~n in
  let flow_of seq = seq / 4 in
  let _, rep = Switch.verify ~k:4 ~flow_of sw trace in
  check "equivalent with dummy stage" true (Equiv.equivalent rep);
  check_int "no reordered flows" 0 rep.Equiv.reordered_flows

let test_remap_period_zero_ok () =
  let sw = Switch.create_exn Mp5_apps.Sources.heavy_hitter in
  let rng = Rng.create 14 in
  let trace = line_rate_trace ~k:4 ~n:2000 ~fields:2 (fun _ _ -> Rng.int rng 1000) in
  let params = { (Sim.default_params ~k:4) with Sim.remap_period = 0 } in
  let _, rep = verify ~params ~k:4 sw trace in
  check "no remap still equivalent" true (Equiv.equivalent rep)

let test_empty_trace_rejected () =
  let sw = Switch.create_exn Mp5_apps.Sources.packet_counter in
  Alcotest.check_raises "empty trace" (Invalid_argument "Sim.run: empty trace") (fun () ->
      ignore (Switch.run ~k:2 sw [||]))

let test_bursty_arrivals () =
  (* Arrival gaps (idle cycles) must not break anything. *)
  let sw = Switch.create_exn Mp5_apps.Sources.sequencer in
  let rng = Rng.create 15 in
  let t = ref 0 in
  let trace =
    Array.init 1000 (fun i ->
        if i mod 7 = 0 then t := !t + 5 else incr t;
        { Machine.time = !t; port = 0; headers = [| Rng.int rng 8; 0 |] })
  in
  let _, rep = verify ~k:4 sw trace in
  check "equivalent with gaps" true (Equiv.equivalent rep)

let test_observer_contract () =
  (* The observer must fire exactly once per visited cycle (cross-checked
     against an attached Metrics.t's cycle counter), hand over
     consistently-shaped snapshots, and — being a pure observer — must
     not perturb the simulation result. *)
  let sw = Switch.create_exn Mp5_apps.Sources.heavy_hitter in
  let rng = Rng.create 16 in
  let k = 4 in
  let trace = line_rate_trace ~k ~n:1500 ~fields:2 (fun _ _ -> Rng.int rng 1000) in
  let stages = Array.length sw.Switch.prog.Mp5_core.Transform.config.Mp5_banzai.Config.stages in
  let params = Sim.default_params ~k in
  let m = Mp5_obs.Metrics.create ~stages ~k in
  let calls = ref 0 and last = ref min_int in
  let observer occ =
    incr calls;
    if occ.Sim.occ_cycle <= !last then
      Alcotest.failf "observer cycle %d not strictly increasing (prev %d)" occ.Sim.occ_cycle
        !last;
    last := occ.Sim.occ_cycle;
    if Array.length occ.Sim.occ_slots <> stages || Array.length occ.Sim.occ_queues <> stages
    then Alcotest.fail "occupancy snapshot has wrong stage count";
    Array.iter
      (fun row -> if Array.length row <> k then Alcotest.fail "occ_slots row <> k")
      occ.Sim.occ_slots;
    Array.iter
      (fun row -> if Array.length row <> k then Alcotest.fail "occ_queues row <> k")
      occ.Sim.occ_queues
  in
  let observed = Sim.run ~observer ~metrics:m params sw.Switch.prog trace in
  let bare = Sim.run params sw.Switch.prog trace in
  check "observer fired" true (!calls > 0);
  check_int "observer called once per visited cycle" m.Mp5_obs.Metrics.m_cycles !calls;
  check "observer and metrics do not perturb the result" true (Sim.results_equal observed bare)

let () =
  Alcotest.run "sim"
    [
      ( "equivalence",
        [
          Alcotest.test_case "sequencer" `Quick test_sequencer_equivalence;
          Alcotest.test_case "all apps, all pipeline counts" `Slow
            test_all_apps_equivalent_all_ks;
          Alcotest.test_case "k=1" `Quick test_k1_trivially_equivalent;
          Alcotest.test_case "unresolvable paths" `Quick test_unresolvable_programs_equivalent;
          Alcotest.test_case "bursty arrivals" `Quick test_bursty_arrivals;
          Alcotest.test_case "determinism" `Quick test_determinism;
        ] );
      ( "limits",
        [
          Alcotest.test_case "global counter 1/k" `Quick test_global_counter_limit;
          Alcotest.test_case "stateless line rate" `Quick test_stateless_line_rate;
          Alcotest.test_case "naive single pipeline" `Quick test_naive_single_throughput;
          Alcotest.test_case "ideal mode" `Quick test_ideal_equivalent_and_fast;
          Alcotest.test_case "static sharding" `Quick test_static_shard_equivalent;
        ] );
      ( "baselines and knobs",
        [
          Alcotest.test_case "no D4 violates C1" `Quick test_no_d4_violates;
          Alcotest.test_case "finite FIFO drops" `Quick test_finite_fifo_drops;
          Alcotest.test_case "adaptive FIFOs lossless" `Quick test_adaptive_fifo_no_drops;
          Alcotest.test_case "ECN marking" `Quick test_ecn_marking;
          Alcotest.test_case "latencies" `Quick test_latencies_positive;
          Alcotest.test_case "stateless priority off" `Quick
            test_stateless_priority_off_still_equivalent;
          Alcotest.test_case "starvation guard" `Quick test_starvation_guard_drops_stateless;
          Alcotest.test_case "flow reordering without dummy stage" `Quick
            test_flow_reordering_without_dummy_stage;
          Alcotest.test_case "flow-order dummy stage" `Quick
            test_flow_order_dummy_stage_fixes_reordering;
          Alcotest.test_case "remap period 0" `Quick test_remap_period_zero_ok;
          Alcotest.test_case "empty trace" `Quick test_empty_trace_rejected;
          Alcotest.test_case "observer contract" `Quick test_observer_contract;
        ] );
    ]
