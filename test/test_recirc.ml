(* Tests for the re-circulation baseline (current-generation switches). *)

module Recirc = Mp5_core.Recirc
module Switch = Mp5_core.Switch
module Equiv = Mp5_core.Equiv
module Machine = Mp5_banzai.Machine
module Rng = Mp5_util.Rng

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let line_rate_trace ~k ~n ~fields gen =
  Array.init n (fun i ->
      { Machine.time = i / k; port = i mod k; headers = Array.init fields (gen i) })

let compare_golden sw trace (r : Recirc.result) =
  let golden = Switch.golden sw trace in
  Equiv.compare ~golden ~n_packets:(Array.length trace) ~store:r.Recirc.store
    ~headers_out:r.Recirc.headers_out ~access_seqs:r.Recirc.access_seqs
    ~exit_order:r.Recirc.exit_order ()

let test_k1_is_single_pipeline () =
  (* With one pipeline there is nowhere to re-circulate to: the baseline
     degenerates to the golden machine. *)
  let sw = Switch.create_exn Mp5_apps.Sources.sequencer in
  let rng = Rng.create 1 in
  let trace = line_rate_trace ~k:1 ~n:1000 ~fields:2 (fun _ _ -> Rng.int rng 8) in
  let r = Recirc.run ~k:1 sw.Switch.prog trace in
  check_int "no recirculations" 0 r.Recirc.recirculations;
  let rep = compare_golden sw trace r in
  check "equivalent" true (Equiv.equivalent rep);
  check_int "no violations" 0 rep.Equiv.c1_violations

let test_all_packets_accounted () =
  let sw = Switch.create_exn Mp5_apps.Sources.conga in
  let rng = Rng.create 2 in
  let trace = line_rate_trace ~k:4 ~n:3000 ~fields:4 (fun _ _ -> Rng.int rng 64) in
  let r = Recirc.run ~k:4 sw.Switch.prog trace in
  check_int "delivered + dropped = n" 3000 (r.Recirc.delivered + r.Recirc.dropped)

let test_recirculations_counted () =
  (* Two arrays forced onto different pipelines: every packet needs at
     least one recirculation for some placements. *)
  let sw =
    Switch.create_exn
      {|
struct Packet { int x; int out; };
int a[4];
int b[4];
void func(struct Packet p) {
    a[p.x % 4] = a[p.x % 4] + 1;
    b[p.x % 4] = b[p.x % 4] + a[p.x % 4];
}
|}
  in
  let rng = Rng.create 3 in
  let trace = line_rate_trace ~k:4 ~n:1000 ~fields:2 (fun _ _ -> Rng.int rng 4) in
  (* Find a seed that separates the two arrays. *)
  let separated =
    List.find_opt
      (fun seed ->
        let r = Recirc.run ~k:4 ~shard_seed:seed sw.Switch.prog trace in
        r.Recirc.recirculations > 0)
      [ 1; 2; 3; 4; 5; 6; 7; 8 ]
  in
  check "some placement forces recirculation" true (separated <> None)

let test_throughput_below_mp5 () =
  let sw =
    Switch.create_exn ~pad_to_stages:16
      (Mp5_apps.Sources.sensitivity_program ~stateful:4 ~reg_size:64)
  in
  let rng = Rng.create 4 in
  let trace = line_rate_trace ~k:4 ~n:4000 ~fields:6 (fun _ _ -> Rng.int rng 64) in
  let rc = Recirc.run ~k:4 sw.Switch.prog trace in
  let mp5 = Switch.run ~k:4 sw trace in
  check "recirculation loses" true
    (rc.Recirc.normalized_throughput < mp5.Mp5_core.Sim.normalized_throughput)

let test_violations_at_multi_pipeline () =
  let sw = Switch.create_exn ~pad_to_stages:16 Mp5_apps.Sources.sequencer in
  let rng = Rng.create 5 in
  let trace = line_rate_trace ~k:4 ~n:4000 ~fields:2 (fun _ _ -> Rng.int rng 8) in
  let r = Recirc.run ~k:4 ~sharding:`Cell sw.Switch.prog trace in
  let rep = compare_golden sw trace r in
  check "order violations occur" true (rep.Equiv.c1_violations > 0)

let test_deterministic () =
  let sw = Switch.create_exn Mp5_apps.Sources.wfq in
  let rng = Rng.create 6 in
  let trace = line_rate_trace ~k:4 ~n:2000 ~fields:4 (fun _ _ -> Rng.int rng 256) in
  let r1 = Recirc.run ~k:4 sw.Switch.prog trace in
  let r2 = Recirc.run ~k:4 sw.Switch.prog trace in
  check "same order" true (r1.Recirc.exit_order = r2.Recirc.exit_order);
  check_int "same recircs" r1.Recirc.recirculations r2.Recirc.recirculations

let test_stateless_program_line_rate () =
  let sw =
    Switch.create_exn
      "struct Packet { int a; };\nvoid func(struct Packet p) { p.a = p.a * 2; }"
  in
  let rng = Rng.create 7 in
  let trace = line_rate_trace ~k:4 ~n:2000 ~fields:1 (fun _ _ -> Rng.int rng 100) in
  let r = Recirc.run ~k:4 sw.Switch.prog trace in
  check_int "no recirculation needed" 0 r.Recirc.recirculations;
  check "line rate" true (r.Recirc.normalized_throughput > 0.99);
  let rep = compare_golden sw trace r in
  check "stateless always equivalent" true (Equiv.equivalent rep)

let test_header_writeback_on_final_pass () =
  (* The sequencer writes the counter into the packet; re-circulated or
     not, delivered headers must carry a plausible counter value (> 0). *)
  let sw = Switch.create_exn Mp5_apps.Sources.sequencer in
  let rng = Rng.create 8 in
  let trace = line_rate_trace ~k:2 ~n:200 ~fields:2 (fun _ _ -> Rng.int rng 8) in
  let r = Recirc.run ~k:2 sw.Switch.prog trace in
  List.iter (fun (_, h) -> check "seqno written" true (h.(1) > 0)) r.Recirc.headers_out

let () =
  Alcotest.run "recirc"
    [
      ( "recirc",
        [
          Alcotest.test_case "k=1 degenerates to golden" `Quick test_k1_is_single_pipeline;
          Alcotest.test_case "packets accounted" `Quick test_all_packets_accounted;
          Alcotest.test_case "recirculations counted" `Quick test_recirculations_counted;
          Alcotest.test_case "throughput below MP5" `Quick test_throughput_below_mp5;
          Alcotest.test_case "C1 violations occur" `Quick test_violations_at_multi_pipeline;
          Alcotest.test_case "deterministic" `Quick test_deterministic;
          Alcotest.test_case "stateless at line rate" `Quick test_stateless_program_line_rate;
          Alcotest.test_case "write-back on final pass" `Quick
            test_header_writeback_on_final_pass;
        ] );
    ]
