(* Unit tests for name resolution / static checks. *)

open Mp5_domino

let check = Alcotest.(check bool)

let wrap body =
  Printf.sprintf
    "struct Packet { int x; int y; };\nint scalar;\nint arr[4];\nvoid func(struct Packet p) { %s }"
    body

let ok src =
  match Typecheck.check_string src with
  | _ -> true
  | exception Typecheck.Error _ -> false

let expect_err name src =
  match Typecheck.check_string src with
  | exception Typecheck.Error _ -> ()
  | _ -> Alcotest.failf "%s: expected a type error" name

let test_valid () =
  check "simple" true (ok (wrap "p.x = p.y + 1;"));
  check "scalar reg" true (ok (wrap "scalar = scalar + 1;"));
  check "array reg" true (ok (wrap "arr[p.x % 4] = 1;"));
  check "local" true (ok (wrap "int t = 3; p.x = t;"));
  check "hash" true (ok (wrap "p.x = hash(p.x, p.y) % 4;"))

let test_unknown_names () =
  expect_err "unknown field" (wrap "p.z = 1;");
  expect_err "unknown field read" (wrap "p.x = p.z;");
  expect_err "unknown var" (wrap "p.x = nope;");
  expect_err "unknown register" (wrap "nope[0] = 1;");
  expect_err "wrong struct param" (wrap "q.x = 1;")

let test_scalar_vs_array () =
  expect_err "array needs index (rvalue)" (wrap "p.x = arr;");
  expect_err "array needs index (lvalue)" (wrap "arr = 1;");
  expect_err "scalar cannot be indexed" (wrap "scalar[0] = 1;");
  expect_err "scalar read with index" (wrap "p.x = scalar[0];")

let test_locals () =
  expect_err "undeclared assignment" (wrap "t = 1;");
  expect_err "use before declaration" (wrap "p.x = t; int t;");
  expect_err "duplicate local" (wrap "int t; int t;");
  expect_err "local shadows register" (wrap "int scalar;")

let test_declaration_conflicts () =
  expect_err "duplicate packet field"
    "struct Packet { int x; int x; }; void func(struct Packet p) { p.x = 1; }";
  expect_err "duplicate register"
    "struct Packet { int x; }; int r; int r; void func(struct Packet p) { p.x = 1; }";
  expect_err "register collides with field"
    "struct Packet { int x; }; int x; void func(struct Packet p) { p.x = 1; }";
  expect_err "zero-size register"
    "struct Packet { int x; }; int r[0]; void func(struct Packet p) { p.x = 1; }";
  expect_err "too many initializers"
    "struct Packet { int x; }; int r[2] = {1,2,3}; void func(struct Packet p) { p.x = 1; }"

let test_hash_arity () = expect_err "hash without args" (wrap "p.x = hash();")

let test_env_contents () =
  let env = Typecheck.check_string (wrap "int t = 1; p.x = t;") in
  check "fields recorded" true (env.Typecheck.fields = [| "x"; "y" |]);
  check "regs recorded" true (Array.length env.Typecheck.regs = 2);
  check "scalar size 1" true (env.Typecheck.regs.(0).Mp5_banzai.Config.size = 1);
  check "locals recorded" true (env.Typecheck.locals = [ "t" ]);
  check "field index" true (Hashtbl.find env.Typecheck.field_index "y" = 1);
  check "reg index" true (Hashtbl.find env.Typecheck.reg_index "arr" = 1)

let test_branch_scoping () =
  (* Flat function scope: a local declared in a branch is visible after. *)
  check "branch-declared local" true (ok (wrap "if (p.x) { int t = 1; p.y = t; } p.x = 2;"))

let () =
  Alcotest.run "typecheck"
    [
      ( "typecheck",
        [
          Alcotest.test_case "valid programs" `Quick test_valid;
          Alcotest.test_case "unknown names" `Quick test_unknown_names;
          Alcotest.test_case "scalar vs array" `Quick test_scalar_vs_array;
          Alcotest.test_case "locals" `Quick test_locals;
          Alcotest.test_case "declaration conflicts" `Quick test_declaration_conflicts;
          Alcotest.test_case "hash arity" `Quick test_hash_arity;
          Alcotest.test_case "env contents" `Quick test_env_contents;
          Alcotest.test_case "branch scoping" `Quick test_branch_scoping;
        ] );
    ]
