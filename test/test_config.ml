(* Unit tests for pipeline configurations: structural validation, field
   and register helpers, stores. *)

module Expr = Mp5_banzai.Expr
module Atom = Mp5_banzai.Atom
module Config = Mp5_banzai.Config
module Store = Mp5_banzai.Store

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let base_config () =
  {
    Config.fields = [| "a"; "b"; "$t0" |];
    n_user_fields = 2;
    regs = [| Config.reg ~name:"r" ~size:4 ~init:[| 1; 2 |] () |];
    tables = [||];
    stages =
      [|
        {
          Config.stateless = [ Atom.stateless_op ~dst:2 ~rhs:(Expr.Field 0) ];
          atoms =
            [ Atom.stateful ~reg:0 ~index:(Expr.Field 2) ~update:(Expr.Binop (Expr.Add, Expr.State_val, Expr.Const 1)) () ];
        };
      |];
  }

let ok = function Ok () -> true | Error _ -> false

let test_valid_config () = check "validates" true (ok (Config.validate (base_config ())))

let test_reg_constructor () =
  let r = Config.reg ~name:"x" ~size:4 ~init:[| 9 |] () in
  Alcotest.(check (array int)) "zero padded" [| 9; 0; 0; 0 |] r.Config.init;
  Alcotest.check_raises "bad size" (Invalid_argument "Config.reg: size must be positive")
    (fun () -> ignore (Config.reg ~name:"x" ~size:0 ()));
  Alcotest.check_raises "too long init"
    (Invalid_argument "Config.reg: init longer than size") (fun () ->
      ignore (Config.reg ~name:"x" ~size:1 ~init:[| 1; 2 |] ()))

let test_field_out_of_range () =
  let c = base_config () in
  let bad =
    {
      c with
      Config.stages =
        [| { Config.stateless = [ { Atom.dst = 2; rhs = Expr.Field 9 } ]; atoms = [] } |];
    }
  in
  check "rejects" false (ok (Config.validate bad))

let test_reg_out_of_range () =
  let c = base_config () in
  let bad =
    {
      c with
      Config.stages =
        [| { Config.stateless = []; atoms = [ Atom.stateful ~reg:3 ~index:(Expr.Const 0) () ] } |];
    }
  in
  check "rejects" false (ok (Config.validate bad))

let test_reg_in_two_stages () =
  let c = base_config () in
  let stage r =
    { Config.stateless = []; atoms = [ Atom.stateful ~reg:r ~index:(Expr.Const 0) () ] }
  in
  let bad = { c with Config.stages = [| stage 0; stage 0 |] } in
  check "state is stage-local" false (ok (Config.validate bad));
  (* Two atoms on the same array within ONE stage are fine structurally. *)
  let same_stage =
    {
      c with
      Config.stages =
        [|
          {
            Config.stateless = [];
            atoms =
              [
                Atom.stateful ~reg:0 ~index:(Expr.Const 0) ();
                Atom.stateful ~reg:0 ~index:(Expr.Const 1) ();
              ];
          };
        |];
    }
  in
  check "same stage ok" true (ok (Config.validate same_stage))

let test_add_field () =
  let c, id = Config.add_field (base_config ()) "$t1" in
  check_int "new id" 3 id;
  check_int "n_user_fields preserved" 2 c.Config.n_user_fields;
  check "name recorded" true (c.Config.fields.(3) = "$t1")

let test_stateful_stages () =
  let c = base_config () in
  Alcotest.(check (list int)) "stateful stage list" [ 0 ] (Config.stateful_stages c);
  let c2 =
    { c with Config.stages = Array.append c.Config.stages [| Config.empty_stage |] }
  in
  Alcotest.(check (list int)) "empty stage not stateful" [ 0 ] (Config.stateful_stages c2)

let test_stage_of_reg () =
  let c = base_config () in
  check "found" true (Config.stage_of_reg c 0 = Some 0);
  let c2 = { c with Config.stages = [| Config.empty_stage |] } in
  check "not accessed" true (Config.stage_of_reg c2 0 = None)

let test_field_id () =
  let c = base_config () in
  check "a" true (Config.field_id c "a" = Some 0);
  check "missing" true (Config.field_id c "zz" = None)

(* --- store --- *)

let test_store_init () =
  let s = Store.create (base_config ()) in
  check_int "init value" 1 (Store.get s ~reg:0 ~idx:0);
  check_int "padded zero" 0 (Store.get s ~reg:0 ~idx:3)

let test_store_copy_independent () =
  let s = Store.create (base_config ()) in
  let s2 = Store.copy s in
  Store.set s ~reg:0 ~idx:0 99;
  check_int "copy unaffected" 1 (Store.get s2 ~reg:0 ~idx:0);
  check "not equal now" false (Store.equal s s2)

let test_store_diff () =
  let s = Store.create (base_config ()) in
  let s2 = Store.copy s in
  Store.set s ~reg:0 ~idx:2 5;
  (match Store.diff s s2 with
  | [ (0, 2, 5, 0) ] -> ()
  | _ -> Alcotest.fail "unexpected diff");
  check "diff empty when equal" true (Store.diff s2 s2 = [])

let test_store_array_is_live () =
  let s = Store.create (base_config ()) in
  (Store.array s ~reg:0).(1) <- 42;
  check_int "mutation visible" 42 (Store.get s ~reg:0 ~idx:1)

let () =
  Alcotest.run "config"
    [
      ( "validate",
        [
          Alcotest.test_case "valid config" `Quick test_valid_config;
          Alcotest.test_case "reg constructor" `Quick test_reg_constructor;
          Alcotest.test_case "field out of range" `Quick test_field_out_of_range;
          Alcotest.test_case "reg out of range" `Quick test_reg_out_of_range;
          Alcotest.test_case "reg in two stages" `Quick test_reg_in_two_stages;
        ] );
      ( "helpers",
        [
          Alcotest.test_case "add_field" `Quick test_add_field;
          Alcotest.test_case "stateful_stages" `Quick test_stateful_stages;
          Alcotest.test_case "stage_of_reg" `Quick test_stage_of_reg;
          Alcotest.test_case "field_id" `Quick test_field_id;
        ] );
      ( "store",
        [
          Alcotest.test_case "init" `Quick test_store_init;
          Alcotest.test_case "copy independence" `Quick test_store_copy_independent;
          Alcotest.test_case "diff" `Quick test_store_diff;
          Alcotest.test_case "live array" `Quick test_store_array_is_live;
        ] );
    ]
