(* Tests for the Banzai atom-template taxonomy: classification of
   compiled atoms and machine-template feasibility checks. *)

module Expr = Mp5_banzai.Expr
module Atom = Mp5_banzai.Atom
module Taxonomy = Mp5_banzai.Taxonomy
module Capability = Mp5_banzai.Capability
open Mp5_domino

let check = Alcotest.(check bool)

let tax = Alcotest.testable (fun ppf t -> Format.pp_print_string ppf (Taxonomy.name t)) ( = )

(* Classify the single atom of a one-array program. *)
let classify_program body =
  let src =
    Printf.sprintf
      "struct Packet { int x; int y; };\nint r[8];\nint s[8];\nvoid func(struct Packet p) { %s }"
      body
  in
  let t = Compile.compile_exn src in
  let atoms =
    Array.to_list t.Compile.config.Mp5_banzai.Config.stages
    |> List.concat_map (fun (st : Mp5_banzai.Config.stage) -> st.Mp5_banzai.Config.atoms)
    |> List.filter (fun (a : Atom.stateful) -> a.Atom.reg = 0)
  in
  match atoms with [ a ] -> Taxonomy.classify a | _ -> Alcotest.fail "expected one atom on r"

let test_read () =
  Alcotest.check tax "pure read" Taxonomy.Read (classify_program "p.x = r[0];")

let test_write () =
  Alcotest.check tax "blind write" Taxonomy.Write (classify_program "r[0] = p.x + 1;")

let test_raw () =
  Alcotest.check tax "counter" Taxonomy.Raw (classify_program "r[0] = r[0] + 1;");
  Alcotest.check tax "add field" Taxonomy.Raw (classify_program "r[0] = r[0] + p.x;");
  Alcotest.check tax "subtract" Taxonomy.Raw (classify_program "r[0] = r[0] - p.x;")

let test_praw () =
  Alcotest.check tax "guarded counter" Taxonomy.Praw
    (classify_program "if (p.x > 3) { r[0] = r[0] + 1; }");
  (* Predicates over the state itself stay PRAW (Banzai's predicated
     atoms compare against the register). *)
  Alcotest.check tax "state-dependent predicate" Taxonomy.Praw
    (classify_program "if (r[0] > 5) { r[0] = r[0] + p.x; }")

let test_if_else_raw () =
  Alcotest.check tax "two-armed update" Taxonomy.If_else_raw
    (classify_program "if (p.x) { r[0] = r[0] + 1; } else { r[0] = r[0] - 1; }");
  Alcotest.check tax "reset-or-bump" Taxonomy.If_else_raw
    (classify_program "if (r[0] > 9) { r[0] = 0; } else { r[0] = r[0] + 1; }")

let test_nested () =
  Alcotest.check tax "nested predication" Taxonomy.Nested
    (classify_program
       "if (p.x) { if (p.y) { r[0] = r[0] + 1; } else { r[0] = r[0] + 2; } } else { r[0] = 0; }")

let test_pairs () =
  Alcotest.check tax "multiplicative state" Taxonomy.Pairs
    (classify_program "r[0] = r[0] * 2;");
  Alcotest.check tax "figure 3 reg3 atom" Taxonomy.Pairs
    (classify_program "r[0] = (p.x == 1) ? r[0] * p.y : r[0] + p.y;");
  Alcotest.check tax "state on subtrahend side" Taxonomy.Pairs
    (classify_program "r[0] = p.x - r[0];")

let test_order_monotone () =
  let all =
    [ Taxonomy.Read; Write; Raw; Praw; If_else_raw; Nested; Pairs ]
  in
  List.iteri
    (fun i t -> check "rank is position" true (Taxonomy.order t = i))
    all;
  check "pairs subsumes all" true
    (List.for_all (fun a -> Taxonomy.subsumes ~machine:Taxonomy.Pairs ~atom:a) all);
  check "raw does not subsume praw" false
    (Taxonomy.subsumes ~machine:Taxonomy.Raw ~atom:Taxonomy.Praw)

let compile_with_template template src =
  Compile.compile ~limits:{ Capability.default with Capability.template } src

let counter_src =
  "struct Packet { int x; };\nint r[4];\nvoid func(struct Packet p) { r[p.x % 4] = r[p.x % 4] + 1; }"

let fig3_src = Mp5_apps.Sources.figure3

let test_machine_template_gates_compilation () =
  check "counter fits a RAW machine" true
    (Result.is_ok (compile_with_template Taxonomy.Raw counter_src));
  check "counter rejected by write-only machine" true
    (Result.is_error (compile_with_template Taxonomy.Write counter_src));
  check "figure 3 needs Pairs" true
    (Result.is_error (compile_with_template Taxonomy.Nested fig3_src));
  check "figure 3 fits Pairs" true
    (Result.is_ok (compile_with_template Taxonomy.Pairs fig3_src))

let test_real_apps_templates () =
  (* Classification of the bundled applications' heaviest atom. *)
  let heaviest src =
    let t = Compile.compile_exn src in
    Array.to_list t.Compile.config.Mp5_banzai.Config.stages
    |> List.concat_map (fun (st : Mp5_banzai.Config.stage) -> st.Mp5_banzai.Config.atoms)
    |> List.fold_left
         (fun acc a -> max acc (Taxonomy.order (Taxonomy.classify a)))
         0
  in
  check "sequencer is RAW-class" true
    (heaviest Mp5_apps.Sources.sequencer = Taxonomy.order Taxonomy.Raw);
  check "heavy hitter is RAW-class" true
    (heaviest Mp5_apps.Sources.heavy_hitter = Taxonomy.order Taxonomy.Raw);
  check "wfq needs nested or richer" true
    (heaviest Mp5_apps.Sources.wfq >= Taxonomy.order Taxonomy.If_else_raw);
  check "every app fits the default machine" true
    (List.for_all
       (fun (_, src) -> Result.is_ok (Compile.compile src))
       Mp5_apps.Sources.all_named)

let () =
  Alcotest.run "taxonomy"
    [
      ( "classification",
        [
          Alcotest.test_case "read" `Quick test_read;
          Alcotest.test_case "write" `Quick test_write;
          Alcotest.test_case "read-add-write" `Quick test_raw;
          Alcotest.test_case "predicated RAW" `Quick test_praw;
          Alcotest.test_case "if-else RAW" `Quick test_if_else_raw;
          Alcotest.test_case "nested" `Quick test_nested;
          Alcotest.test_case "pairs" `Quick test_pairs;
          Alcotest.test_case "ordering" `Quick test_order_monotone;
        ] );
      ( "machine templates",
        [
          Alcotest.test_case "gates compilation" `Quick test_machine_template_gates_compilation;
          Alcotest.test_case "real applications" `Quick test_real_apps_templates;
        ] );
    ]
