(* Fabric-grade test battery for lib/fabric.

   The anchor is the degenerate differential: a one-switch fabric with
   zero-delay host links is the plain simulator wearing a topology — on
   a slice of the 220-program corpus its exit and access digests must
   equal [Sim.run_source]'s exactly, packet for packet.  The fabric
   driver may add routing, links and lock-step stepping, but it may not
   change a single observable bit of the machine it wraps.

   On top of that, a 100-seed property quantifies over random topologies
   (2-8 switches, random trunk delays, random host placement):
   fabric-wide packet conservation holds at every monitor epoch, and the
   result is bit-identical across --jobs 1/2/4 and across the
   kernel/interpreter engines — including under a seeded link-down
   fault plan.  Topology validation, forwarding-miss accounting and the
   zero-delay corner get direct unit tests. *)

module Sim = Mp5_core.Sim
module Machine = Mp5_banzai.Machine
module Psource = Mp5_workload.Packet_source
module Pool = Mp5_util.Pool
module Rng = Mp5_util.Rng
module Monitor = Mp5_fault.Monitor
module Linkplan = Mp5_fault.Linkplan
module Topology = Mp5_fabric.Topology
module Routing = Mp5_fabric.Routing
module Fabric = Mp5_fabric.Fabric
module Progen = Mp5_fuzz.Progen
open Mp5_domino

let limits = Progen.limits

let prog_for seed =
  let src = Progen.generate seed in
  match Compile.compile ~limits src with
  | Ok t -> (src, Mp5_core.Transform.transform ~limits t.Compile.config)
  | Error e ->
      Alcotest.failf "seed %d: generated program failed to compile:\n%s\n%a" seed src
        Compile.pp_error e

let params_for topo ~k plan =
  {
    Fabric.fp_sim = Sim.default_params ~k;
    fp_topo = topo;
    fp_policy = Routing.shortest_paths topo;
    fp_plan = plan;
  }

let completed seed = function
  | Fabric.Completed r -> r
  | Fabric.Suspended _ -> Alcotest.failf "seed %d: fabric run suspended without a budget" seed

(* Teams shared across the whole file so domain spawn is paid once. *)
let teams = lazy (Array.map (fun jobs -> Pool.Team.create ~jobs) [| 2; 4 |])

(* ------------------------------------------------------------------ *)
(* Degenerate differential: 1-switch fabric = plain streamed run.      *)
(* ------------------------------------------------------------------ *)

(* Progen traces use ports 0..k-1, so a one-switch topology with k hosts
   maps port -> host identically and zero-delay uplinks admit each cycle's
   packets in (time, port) trace order — exactly the plain run's
   admission order.  All packets route to host 0, whose single
   zero-delay downlink delivers in exit order, so the fabric's exit
   digest folds the same (seq, latency, headers) triples in the same
   order as the machine's streaming digest. *)
let run_degenerate seed =
  let src, prog = prog_for seed in
  let k = 2 + (seed mod 3) in
  let n_packets = 100 in
  let trace = Progen.trace ~seed ~k ~n:n_packets in
  let params = Sim.default_params ~k in
  let plain =
    match Sim.run_source params prog (Psource.of_array trace) with
    | Sim.Completed s -> s
    | Sim.Suspended _ -> Alcotest.failf "seed %d: plain run suspended without a budget" seed
  in
  let topo = Topology.line ~switches:1 ~hosts_per_sw:k ~delay:0 in
  let fp = params_for topo ~k Linkplan.empty in
  let mon = Monitor.create ~epoch:16 () in
  let r =
    completed seed
      (Fabric.run ~monitor:mon ~compiled:(seed mod 2 = 0) ~dst:(fun _ -> 0) fp prog
         (Psource.of_array trace))
  in
  if not (Monitor.ok mon) then
    Alcotest.failf "seed %d: conservation violated on the degenerate fabric:\n%s\n%s" seed src
      (Monitor.summary mon);
  if Monitor.checks mon = 0 then
    Alcotest.failf "seed %d: degenerate fabric ran with zero conservation checks" seed;
  if r.Fabric.fr_exit_digest <> plain.Sim.s_digests.Sim.dg_exits then
    Alcotest.failf "seed %d: fabric exit digest %016x <> plain %016x on:\n%s" seed
      r.Fabric.fr_exit_digest plain.Sim.s_digests.Sim.dg_exits src;
  if r.Fabric.fr_access_digest <> plain.Sim.s_digests.Sim.dg_access then
    Alcotest.failf "seed %d: fabric access digest %016x <> plain %016x on:\n%s" seed
      r.Fabric.fr_access_digest plain.Sim.s_digests.Sim.dg_access src;
  if r.Fabric.fr_node_dropped <> plain.Sim.s_dropped then
    Alcotest.failf "seed %d: fabric node drops %d <> plain %d on:\n%s" seed
      r.Fabric.fr_node_dropped plain.Sim.s_dropped src;
  if r.Fabric.fr_injected <> n_packets then
    Alcotest.failf "seed %d: fabric injected %d of %d packets" seed r.Fabric.fr_injected
      n_packets;
  if r.Fabric.fr_delivered + r.Fabric.fr_node_dropped <> n_packets then
    Alcotest.failf "seed %d: degenerate fabric lost packets: delivered %d + dropped %d <> %d"
      seed r.Fabric.fr_delivered r.Fabric.fr_node_dropped n_packets

let test_degenerate () =
  (* Every 10th corpus seed: 22 programs across k in {2,3,4} and both
     execution engines. *)
  let seeds = List.init 22 (fun i -> i * 10) in
  List.iter run_degenerate seeds;
  Alcotest.(check int) "slice size" 22 (List.length seeds)

(* ------------------------------------------------------------------ *)
(* 100-seed property: conservation + jobs/engine identity.             *)
(* ------------------------------------------------------------------ *)

(* Random connected topology: a random spanning tree over 2-8 switches
   plus a few extra trunks, random per-trunk delays 0-2, and hosts
   attached to random switches. *)
let gen_topology rng =
  let n_sw = 2 + Rng.int rng 7 in
  let seen = Hashtbl.create 16 in
  let trunk a b =
    let key = (min a b, max a b) in
    if a = b || Hashtbl.mem seen key then None
    else begin
      Hashtbl.add seen key ();
      Some (Topology.edge ~delay:(Rng.int rng 3) (Switch a) (Switch b))
    end
  in
  let tree =
    List.filter_map
      (fun s -> trunk (Rng.int rng s) s)
      (List.init (n_sw - 1) (fun i -> i + 1))
  in
  let extra =
    List.filter_map
      (fun _ -> trunk (Rng.int rng n_sw) (Rng.int rng n_sw))
      (List.init (Rng.int rng n_sw) Fun.id)
  in
  let n_hosts = n_sw + Rng.int rng (n_sw + 1) in
  let hosts =
    List.init n_hosts (fun h ->
        Topology.edge ~delay:(Rng.int rng 2) (Host h) (Switch (Rng.int rng n_sw)))
  in
  match Topology.make ~n_switches:n_sw ~n_hosts (tree @ extra @ hosts) with
  | Ok t -> t
  | Error e -> QCheck.Test.fail_reportf "generated topology invalid: %s" e

let gen_trace rng ~n_hosts ~n =
  let per = 1 + Rng.int rng 3 in
  Array.init n (fun i ->
      {
        Machine.time = i / per;
        port = Rng.int rng n_hosts;
        headers = Array.init 4 (fun _ -> Rng.int rng 16 - 2);
      })

let prop_fabric_deterministic =
  QCheck.Test.make ~name:"conservation + jobs/engine identity (random fabrics)" ~count:100
    QCheck.(small_nat)
    (fun seed ->
      let src, prog = prog_for (seed mod 220) in
      let rng = Rng.create ((seed * 131) + 7) in
      let topo = gen_topology rng in
      let n_hosts = Topology.n_hosts topo in
      let trace = gen_trace rng ~n_hosts ~n:60 in
      let dst (input : Machine.input) =
        (input.Machine.port + abs input.Machine.headers.(0)) mod n_hosts
      in
      let plan =
        if seed mod 3 = 0 then begin
          let link = Rng.int rng (Topology.n_links topo) in
          let text = Printf.sprintf "link-down @5..40 link=%d" link in
          match Linkplan.parse text with
          | Ok p -> p
          | Error e -> QCheck.Test.fail_reportf "bad link plan %S: %s" text e
        end
        else Linkplan.empty
      in
      let fp = params_for topo ~k:2 plan in
      let one ?team ~compiled () =
        let mon = Monitor.create ~epoch:16 () in
        let r =
          try
            completed seed
              (Fabric.run ?team ~monitor:mon ~compiled ~dst fp prog (Psource.of_array trace))
          with Monitor.Violation diag ->
            QCheck.Test.fail_reportf "seed %d: conservation violated:\n%s\n%s" seed diag src
        in
        if not (Monitor.ok mon) then
          QCheck.Test.fail_reportf "seed %d: monitor not ok:\n%s" seed (Monitor.summary mon);
        if Monitor.checks mon = 0 then
          QCheck.Test.fail_reportf "seed %d: run finished with zero conservation checks" seed;
        r
      in
      let base = one ~compiled:true () in
      (* Every packet is accounted for at the end, too. *)
      if
        base.Fabric.fr_delivered + base.Fabric.fr_node_dropped + base.Fabric.fr_miss_dropped
        + base.Fabric.fr_link_dropped
        <> base.Fabric.fr_injected
      then
        QCheck.Test.fail_reportf "seed %d: final accounting leaks: %d+%d+%d+%d <> %d" seed
          base.Fabric.fr_delivered base.Fabric.fr_node_dropped base.Fabric.fr_miss_dropped
          base.Fabric.fr_link_dropped base.Fabric.fr_injected;
      let t2 = (Lazy.force teams).(0) and t4 = (Lazy.force teams).(1) in
      if not (Fabric.results_equal base (one ~team:t2 ~compiled:true ())) then
        QCheck.Test.fail_reportf "seed %d: jobs=2 diverges from jobs=1 on:\n%s" seed src;
      if not (Fabric.results_equal base (one ~team:t4 ~compiled:true ())) then
        QCheck.Test.fail_reportf "seed %d: jobs=4 diverges from jobs=1 on:\n%s" seed src;
      if not (Fabric.results_equal base (one ~compiled:false ())) then
        QCheck.Test.fail_reportf "seed %d: interpreter engine diverges from kernels on:\n%s"
          seed src;
      true)

(* ------------------------------------------------------------------ *)
(* Topology validation and edge cases.                                 *)
(* ------------------------------------------------------------------ *)

let check_invalid name expect = function
  | Ok _ -> Alcotest.failf "%s: invalid topology accepted" name
  | Error msg ->
      let has sub =
        let ls = String.length sub and lm = String.length msg in
        let rec go i = i + ls <= lm && (String.sub msg i ls = sub || go (i + 1)) in
        go 0
      in
      if not (has expect) then
        Alcotest.failf "%s: error %S does not mention %S" name msg expect

let test_validation () =
  check_invalid "self-loop" "self-loop"
    (Topology.make ~n_switches:1 ~n_hosts:1
       [ Topology.edge (Switch 0) (Switch 0); Topology.edge (Host 0) (Switch 0) ]);
  check_invalid "unreachable" "unreachable"
    (Topology.make ~n_switches:2 ~n_hosts:2
       [ Topology.edge (Host 0) (Switch 0); Topology.edge (Host 1) (Switch 1) ]);
  check_invalid "host-host" "hosts connect to switches"
    (Topology.make ~n_switches:1 ~n_hosts:2
       [
         Topology.edge (Host 0) (Host 1);
         Topology.edge (Host 0) (Switch 0);
         Topology.edge (Host 1) (Switch 0);
       ]);
  check_invalid "homeless host" "exactly one"
    (Topology.make ~n_switches:2 ~n_hosts:1
       [
         Topology.edge (Switch 0) (Switch 1);
         Topology.edge (Host 0) (Switch 0);
         Topology.edge (Host 0) (Switch 1);
       ]);
  check_invalid "bad spec shape" "unknown shape" (Topology.of_spec "blob:3");
  check_invalid "bad spec option" "unknown option" (Topology.of_spec "line:2,depth=3");
  (* Stock shapes and the spec parser agree. *)
  (match Topology.of_spec "leafspine:2x2,hosts=2,delay=1" with
  | Ok t ->
      Alcotest.(check int) "leafspine switches" 4 (Topology.n_switches t);
      Alcotest.(check int) "leafspine hosts" 4 (Topology.n_hosts t);
      Alcotest.(check int) "leafspine digest"
        (Topology.digest (Topology.leaf_spine ~leaves:2 ~spines:2 ~hosts_per_leaf:2 ~delay:1))
        (Topology.digest t)
  | Error e -> Alcotest.failf "leafspine spec rejected: %s" e);
  match Topology.of_spec "fattree:4" with
  | Ok t ->
      Alcotest.(check int) "fattree switches" 20 (Topology.n_switches t);
      Alcotest.(check int) "fattree hosts" 16 (Topology.n_hosts t)
  | Error e -> Alcotest.failf "fattree spec rejected: %s" e

(* A zero-delay multi-switch line still conserves and terminates. *)
let test_zero_delay () =
  let _, prog = prog_for 3 in
  let topo = Topology.line ~switches:3 ~hosts_per_sw:1 ~delay:0 in
  let trace = gen_trace (Rng.create 99) ~n_hosts:3 ~n:80 in
  let mon = Monitor.create ~epoch:8 () in
  let r =
    completed 3
      (Fabric.run ~monitor:mon ~dst:(fun i -> i.Machine.port mod 3)
         (params_for topo ~k:2 Linkplan.empty)
         prog (Psource.of_array trace))
  in
  Alcotest.(check bool) "monitor ok" true (Monitor.ok mon);
  Alcotest.(check int) "all injected" 80 r.Fabric.fr_injected;
  Alcotest.(check int) "all accounted" 80
    (r.Fabric.fr_delivered + r.Fabric.fr_node_dropped + r.Fabric.fr_miss_dropped
   + r.Fabric.fr_link_dropped)

(* A forwarding-table miss is a counted drop, never a crash: an empty
   policy routes nothing, a dst outside the host space routes nothing. *)
let test_forwarding_miss () =
  let _, prog = prog_for 5 in
  let topo = Topology.line ~switches:2 ~hosts_per_sw:1 ~delay:1 in
  let trace = gen_trace (Rng.create 7) ~n_hosts:2 ~n:40 in
  let empty_policy =
    { Routing.bits = Routing.bits_for 2; rules = Array.make 2 [] }
  in
  let fp =
    {
      Fabric.fp_sim = Sim.default_params ~k:2;
      fp_topo = topo;
      fp_policy = empty_policy;
      fp_plan = Linkplan.empty;
    }
  in
  let mon = Monitor.create ~epoch:8 () in
  let r =
    completed 5
      (Fabric.run ~monitor:mon ~dst:(fun i -> i.Machine.port mod 2) fp prog
         (Psource.of_array trace))
  in
  Alcotest.(check bool) "monitor ok" true (Monitor.ok mon);
  Alcotest.(check int) "nothing delivered" 0 r.Fabric.fr_delivered;
  Alcotest.(check int) "all misses counted" 40
    (r.Fabric.fr_miss_dropped + r.Fabric.fr_node_dropped);
  (* dst outside the host space: the ingress miss path. *)
  let mon2 = Monitor.create ~epoch:8 () in
  let r2 =
    completed 5
      (Fabric.run ~monitor:mon2 ~dst:(fun _ -> 99)
         (params_for topo ~k:2 Linkplan.empty)
         prog (Psource.of_array trace))
  in
  Alcotest.(check bool) "monitor ok (bad dst)" true (Monitor.ok mon2);
  Alcotest.(check int) "every packet an ingress miss" 40 r2.Fabric.fr_miss_dropped

(* Link-down windows drop counted packets; link-delay only reorders
   nothing (per-link FIFO): both keep conservation and determinism. *)
let test_link_faults () =
  let _, prog = prog_for 11 in
  let topo = Topology.line ~switches:2 ~hosts_per_sw:1 ~delay:1 in
  let trace = gen_trace (Rng.create 41) ~n_hosts:2 ~n:60 in
  (* Down the s0->s1 trunk (link 0) for a window covering most of the
     run: cross traffic must drop, local traffic still delivers. *)
  let plan =
    match Linkplan.parse "link-down @0..1000 link=0; link-delay @0..1000 link=1 extra=5" with
    | Ok p -> p
    | Error e -> Alcotest.failf "bad plan: %s" e
  in
  let mon = Monitor.create ~epoch:8 () in
  let r =
    completed 11
      (Fabric.run ~monitor:mon ~dst:(fun i -> 1 - (i.Machine.port mod 2))
         (params_for topo ~k:2 plan)
         prog (Psource.of_array trace))
  in
  Alcotest.(check bool) "monitor ok" true (Monitor.ok mon);
  if r.Fabric.fr_link_dropped = 0 then
    Alcotest.fail "link-down window dropped nothing (cross traffic should hit link 0)";
  Alcotest.(check int) "all accounted" 60
    (r.Fabric.fr_delivered + r.Fabric.fr_node_dropped + r.Fabric.fr_miss_dropped
   + r.Fabric.fr_link_dropped)

let () =
  Alcotest.run "fabric"
    [
      ( "differential",
        [
          Alcotest.test_case "1-switch fabric = plain streamed run (corpus slice)" `Quick
            test_degenerate;
        ] );
      ( "properties",
        [ QCheck_alcotest.to_alcotest prop_fabric_deterministic ] );
      ( "topology",
        [
          Alcotest.test_case "validation rejects malformed topologies" `Quick test_validation;
          Alcotest.test_case "zero-delay links" `Quick test_zero_delay;
          Alcotest.test_case "forwarding miss is a counted drop" `Quick test_forwarding_miss;
          Alcotest.test_case "link-down / link-delay windows" `Quick test_link_faults;
        ] );
    ]
