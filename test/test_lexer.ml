(* Unit tests for the Domino lexer. *)

open Mp5_domino
open Lexer

let check = Alcotest.(check bool)

let toks src = List.map fst (tokenize src)

let test_keywords_and_idents () =
  check "keywords" true
    (toks "struct int void if else"
    = [ KW_STRUCT; KW_INT; KW_VOID; KW_IF; KW_ELSE; EOF ]);
  check "ident not keyword prefix" true (toks "interface" = [ IDENT "interface"; EOF ]);
  check "underscore ident" true (toks "_x1" = [ IDENT "_x1"; EOF ])

let test_numbers () =
  check "decimal" true (toks "42" = [ INT_LIT 42; EOF ]);
  check "zero" true (toks "0" = [ INT_LIT 0; EOF ]);
  check "hex" true (toks "0x1F" = [ INT_LIT 31; EOF ]);
  check "hex upper" true (toks "0XFF" = [ INT_LIT 255; EOF ])

let test_operators () =
  check "two-char ops" true
    (toks "<< >> <= >= == != && ||"
    = [ SHL; SHR; LE; GE; EQ; NE; AND_AND; OR_OR; EOF ]);
  check "single-char ops" true
    (toks "+ - * / % & | ^ ~ < > ! = ? :"
    = [ PLUS; MINUS; STAR; SLASH; PERCENT; AMP; PIPE; CARET; TILDE; LT; GT; BANG; ASSIGN;
        QUESTION; COLON; EOF ]);
  check "punctuation" true
    (toks "{ } ( ) [ ] ; , ."
    = [ LBRACE; RBRACE; LPAREN; RPAREN; LBRACKET; RBRACKET; SEMI; COMMA; DOT; EOF ])

let test_comments () =
  check "line comment" true (toks "1 // two three\n4" = [ INT_LIT 1; INT_LIT 4; EOF ]);
  check "block comment" true (toks "1 /* x\ny */ 2" = [ INT_LIT 1; INT_LIT 2; EOF ]);
  check "comment at eof" true (toks "7 // end" = [ INT_LIT 7; EOF ])

let test_locations () =
  let tokens = tokenize "a\n  b" in
  (match tokens with
  | [ (IDENT "a", la); (IDENT "b", lb); _ ] ->
      check "line 1" true (la.Ast.line = 1 && la.Ast.col = 1);
      check "line 2 col 3" true (lb.Ast.line = 2 && lb.Ast.col = 3)
  | _ -> Alcotest.fail "unexpected tokens")

let test_errors () =
  (try
     ignore (tokenize "a @ b");
     Alcotest.fail "expected error"
   with Lexer.Error (msg, loc) ->
     check "illegal char" true (msg = "illegal character '@'");
     check "at col 3" true (loc.Ast.col = 3));
  try
    ignore (tokenize "/* unterminated");
    Alcotest.fail "expected error"
  with Lexer.Error (msg, _) -> check "unterminated" true (msg = "unterminated block comment")

let test_adjacent_no_space () =
  check "dense expression" true
    (toks "p.x=r[1]%4;"
    = [ IDENT "p"; DOT; IDENT "x"; ASSIGN; IDENT "r"; LBRACKET; INT_LIT 1; RBRACKET;
        PERCENT; INT_LIT 4; SEMI; EOF ])

let () =
  Alcotest.run "lexer"
    [
      ( "lexer",
        [
          Alcotest.test_case "keywords and identifiers" `Quick test_keywords_and_idents;
          Alcotest.test_case "numbers" `Quick test_numbers;
          Alcotest.test_case "operators" `Quick test_operators;
          Alcotest.test_case "comments" `Quick test_comments;
          Alcotest.test_case "locations" `Quick test_locations;
          Alcotest.test_case "errors" `Quick test_errors;
          Alcotest.test_case "dense input" `Quick test_adjacent_no_space;
        ] );
    ]
