(* Tests for multiple logical MP5 instances sharing one switch
   (footnote 1 of the paper). *)

module Partition = Mp5_core.Partition
module Switch = Mp5_core.Switch
module Sim = Mp5_core.Sim
module Equiv = Mp5_core.Equiv
module Machine = Mp5_banzai.Machine
module Rng = Mp5_util.Rng

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let trace ~k ~n ~fields gen =
  Array.init n (fun i ->
      { Machine.time = i / k; port = i mod k; headers = Array.init fields (gen i) })

let test_two_logical_instances () =
  let rng = Rng.create 2 in
  let seq = Switch.create_exn Mp5_apps.Sources.sequencer in
  let hh = Switch.create_exn Mp5_apps.Sources.heavy_hitter in
  let t_seq = trace ~k:2 ~n:2000 ~fields:2 (fun _ _ -> Rng.int rng 8) in
  let t_hh = trace ~k:6 ~n:6000 ~fields:2 (fun _ _ -> Rng.int rng 100000) in
  let results =
    Partition.run ~k:8
      [ Partition.slice seq.Switch.prog ~m:2 t_seq; Partition.slice hh.Switch.prog ~m:6 t_hh ]
  in
  (match results with
  | [ r_seq; r_hh ] ->
      check_int "sequencer delivered" 2000 r_seq.Sim.delivered;
      check_int "heavy hitter delivered" 6000 r_hh.Sim.delivered;
      (* Each slice is equivalent to its own logical single pipeline. *)
      let g_seq = Switch.golden seq t_seq in
      let rep =
        Equiv.compare ~golden:g_seq ~n_packets:2000 ~store:r_seq.Sim.store
          ~headers_out:r_seq.Sim.headers_out ~access_seqs:r_seq.Sim.access_seqs
          ~exit_order:r_seq.Sim.exit_order ()
      in
      check "sequencer slice equivalent" true (Equiv.equivalent rep);
      let g_hh = Switch.golden hh t_hh in
      let rep_hh =
        Equiv.compare ~golden:g_hh ~n_packets:6000 ~store:r_hh.Sim.store
          ~headers_out:r_hh.Sim.headers_out ~access_seqs:r_hh.Sim.access_seqs
          ~exit_order:r_hh.Sim.exit_order ()
      in
      check "heavy hitter slice equivalent" true (Equiv.equivalent rep_hh)
  | _ -> Alcotest.fail "expected two results")

let test_oversubscription_rejected () =
  let seq = Switch.create_exn Mp5_apps.Sources.sequencer in
  let t = trace ~k:3 ~n:10 ~fields:2 (fun _ _ -> 0) in
  Alcotest.check_raises "oversubscribed"
    (Invalid_argument "Partition.run: 6 pipelines requested but the switch has 4") (fun () ->
      ignore
        (Partition.run ~k:4
           [ Partition.slice seq.Switch.prog ~m:3 t; Partition.slice seq.Switch.prog ~m:3 t ]))

let test_zero_pipelines_rejected () =
  let seq = Switch.create_exn Mp5_apps.Sources.sequencer in
  let t = trace ~k:1 ~n:10 ~fields:2 (fun _ _ -> 0) in
  Alcotest.check_raises "no pipelines"
    (Invalid_argument "Partition.run: each slice needs a pipeline") (fun () ->
      ignore (Partition.run ~k:4 [ Partition.slice seq.Switch.prog ~m:0 t ]))

let test_params_k_must_match () =
  let seq = Switch.create_exn Mp5_apps.Sources.sequencer in
  let t = trace ~k:2 ~n:10 ~fields:2 (fun _ _ -> 0) in
  Alcotest.check_raises "k mismatch"
    (Invalid_argument "Partition.run: params.k must equal the slice's m") (fun () ->
      ignore
        (Partition.run ~k:4
           [ Partition.slice ~params:(Sim.default_params ~k:4) seq.Switch.prog ~m:2 t ]))

let test_custom_params_respected () =
  let seq = Switch.create_exn Mp5_apps.Sources.packet_counter in
  let t = trace ~k:2 ~n:500 ~fields:1 (fun _ _ -> 0) in
  let params = { (Sim.default_params ~k:2) with Sim.mode = Sim.Naive_single } in
  match Partition.run ~k:4 [ Partition.slice ~params seq.Switch.prog ~m:2 t ] with
  | [ r ] -> check "naive mode applied" true (r.Sim.normalized_throughput < 0.6)
  | _ -> Alcotest.fail "expected one result"

let () =
  Alcotest.run "partition"
    [
      ( "partition",
        [
          Alcotest.test_case "two logical instances" `Quick test_two_logical_instances;
          Alcotest.test_case "oversubscription rejected" `Quick test_oversubscription_rejected;
          Alcotest.test_case "zero pipelines rejected" `Quick test_zero_pipelines_rejected;
          Alcotest.test_case "params k mismatch" `Quick test_params_k_must_match;
          Alcotest.test_case "custom params" `Quick test_custom_params_respected;
        ] );
    ]
