(* Tests for match tables: lookup semantics, control-plane operations,
   the Domino surface syntax, and end-to-end MP5 equivalence for
   table-driven programs. *)

module Table = Mp5_banzai.Table
module Expr = Mp5_banzai.Expr
module Machine = Mp5_banzai.Machine
module Store = Mp5_banzai.Store
module Switch = Mp5_core.Switch
module Equiv = Mp5_core.Equiv
module Rng = Mp5_util.Rng
open Mp5_domino

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

(* --- Table unit tests --- *)

let test_empty_default () =
  let t = Table.create ~name:"t" ~arity:2 ~default_action:7 () in
  check_int "default on miss" 7 (Table.lookup t [ 1; 2 ]);
  check_int "size" 0 (Table.size t)

let test_exact_match () =
  let t = Table.create ~name:"t" ~arity:2 () in
  let _ = Table.add_exact t ~key:[ 10; 20 ] ~action:3 () in
  check_int "hit" 3 (Table.lookup t [ 10; 20 ]);
  check_int "miss" 0 (Table.lookup t [ 10; 21 ]);
  check_int "one entry" 1 (Table.size t)

let test_ternary_mask () =
  let t = Table.create ~name:"t" ~arity:1 () in
  (* Match any key whose low byte is 0x42. *)
  Table.add t { Table.key = [ (0x42, 0xFF) ]; priority = 0; action = 9 };
  check_int "masked hit" 9 (Table.lookup t [ 0x1142 ]);
  check_int "masked miss" 0 (Table.lookup t [ 0x1143 ])

let test_wildcard () =
  let t = Table.create ~name:"t" ~arity:1 ~default_action:5 () in
  Table.add t { Table.key = [ (0, 0) ]; priority = 0; action = 1 };
  check_int "wildcard matches everything" 1 (Table.lookup t [ 123456 ])

let test_priority () =
  let t = Table.create ~name:"t" ~arity:1 () in
  Table.add t { Table.key = [ (0, 0) ]; priority = 0; action = 1 };
  Table.add t { Table.key = [ (7, -1) ]; priority = 10; action = 2 };
  check_int "specific entry wins by priority" 2 (Table.lookup t [ 7 ]);
  check_int "fallback to wildcard" 1 (Table.lookup t [ 8 ])

let test_priority_tie_insertion_order () =
  let t = Table.create ~name:"t" ~arity:1 () in
  Table.add t { Table.key = [ (0, 0) ]; priority = 5; action = 1 };
  Table.add t { Table.key = [ (0, 0) ]; priority = 5; action = 2 };
  check_int "oldest wins ties" 1 (Table.lookup t [ 0 ])

let test_clear () =
  let t = Table.create ~name:"t" ~arity:1 () in
  let _ = Table.add_exact t ~key:[ 1 ] ~action:1 () in
  Table.clear t;
  check_int "cleared" 0 (Table.lookup t [ 1 ])

let test_arity_checks () =
  let t = Table.create ~name:"t" ~arity:2 () in
  Alcotest.check_raises "bad entry arity"
    (Invalid_argument "Table.add: table t has arity 2, entry has 1 keys") (fun () ->
      Table.add t { Table.key = [ (1, -1) ]; priority = 0; action = 1 });
  Alcotest.check_raises "bad lookup arity"
    (Invalid_argument "Table.lookup: table t has arity 2, got 3 keys") (fun () ->
      ignore (Table.lookup t [ 1; 2; 3 ]))

let test_expr_lookup () =
  let t = Table.create ~name:"t" ~arity:1 () in
  let _ = Table.add_exact t ~key:[ 5 ] ~action:42 () in
  let e = Expr.Lookup (0, [ Expr.Field 0 ]) in
  check_int "via expression" 42 (Expr.eval ~tables:[| t |] ~fields:[| 5 |] ~state:None e);
  check_int "miss via expression" 0 (Expr.eval ~tables:[| t |] ~fields:[| 6 |] ~state:None e);
  Alcotest.check_raises "missing tables" (Invalid_argument "Expr.eval: table 0 out of range")
    (fun () -> ignore (Expr.eval ~fields:[| 5 |] ~state:None e))

(* --- Domino surface --- *)

let test_parse_and_typecheck () =
  let sw = Switch.create_exn Mp5_apps.Sources.acl in
  check_int "one table" 1 (Array.length (Switch.config sw).Mp5_banzai.Config.tables);
  check "handle found" true (Table.arity (Switch.table sw "acl") = 2)

let tc_err src =
  match Typecheck.check_string src with
  | exception Typecheck.Error _ -> ()
  | _ -> Alcotest.fail "expected type error"

let test_surface_errors () =
  tc_err "struct Packet { int x; };\nvoid func(struct Packet p) { p.x = nope(p.x); }";
  tc_err
    "struct Packet { int x; };\ntable t(2);\nvoid func(struct Packet p) { p.x = t(p.x); }";
  tc_err "struct Packet { int x; };\ntable t(0);\nvoid func(struct Packet p) { p.x = 1; }";
  tc_err
    "struct Packet { int x; };\ntable t(1);\ntable t(1);\nvoid func(struct Packet p) { p.x = 1; }";
  tc_err
    "struct Packet { int x; };\nint t;\ntable t(1);\nvoid func(struct Packet p) { p.x = 1; }"

let test_golden_uses_table () =
  let sw = Switch.create_exn Mp5_apps.Sources.acl in
  let acl = Switch.table sw "acl" in
  let _ = Table.add_exact acl ~key:[ 1; 2 ] ~action:1 () in
  let mk src dst time = { Machine.time; port = 0; headers = [| src; dst; 0; 0 |] } in
  let trace = [| mk 1 2 0; mk 3 4 1; mk 1 2 2 |] in
  let g = Switch.golden sw trace in
  check_int "denied verdict" 1 g.Machine.headers_out.(0).(2);
  check_int "allowed verdict" 0 g.Machine.headers_out.(1).(2);
  check_int "counter counts denied only" 2 (Store.get g.Machine.store ~reg:0 ~idx:2);
  check_int "hit count in packet" 2 g.Machine.headers_out.(2).(3)

let test_mp5_equivalent_with_table () =
  let sw = Switch.create_exn Mp5_apps.Sources.acl in
  let acl = Switch.table sw "acl" in
  (* Deny a band of sources via a ternary entry plus some exact entries. *)
  Table.add acl { Table.key = [ (0x10, 0xF0); (0, 0) ]; priority = 1; action = 1 };
  let _ = Table.add_exact acl ~key:[ 3; 7 ] ~action:1 ~priority:2 () in
  let rng = Rng.create 5 in
  let k = 4 in
  let trace =
    Array.init 4000 (fun i ->
        {
          Machine.time = i / k;
          port = i mod k;
          headers = [| Rng.int rng 64; Rng.int rng 64; 0; 0 |];
        })
  in
  let _, rep = Switch.verify ~k sw trace in
  check "equivalent" true (Equiv.equivalent rep);
  check_int "no violations" 0 rep.Equiv.c1_violations

let test_table_guard_is_resolvable () =
  (* The verdict guard depends only on a table over arrival headers, so
     MP5 resolves it preemptively (Figure 5 moves match evaluation into
     the resolution stage). *)
  let sw = Switch.create_exn Mp5_apps.Sources.acl in
  let accs = sw.Switch.prog.Mp5_core.Transform.accesses in
  check "guard resolved" true
    (Array.for_all
       (fun (a : Mp5_core.Transform.access) ->
         match a.Mp5_core.Transform.guard with
         | Mp5_core.Transform.G_resolved _ | Mp5_core.Transform.G_always -> true
         | Mp5_core.Transform.G_unresolved -> false)
       accs);
  check "array sharded" true (Array.for_all Fun.id sw.Switch.prog.Mp5_core.Transform.sharded)

let test_capability_no_match_unit () =
  let limits =
    { Mp5_banzai.Capability.default with Mp5_banzai.Capability.allow_table = false }
  in
  match Mp5_domino.Compile.compile ~limits Mp5_apps.Sources.acl with
  | Error e -> check "rejected at lowering" true (e.Mp5_domino.Compile.phase = Mp5_domino.Compile.Lower)
  | Ok _ -> Alcotest.fail "expected rejection without match units"

let test_mp5_line_rate_when_mostly_allowed () =
  (* With an empty table nothing is denied: every packet is stateless and
     MP5 runs at line rate even at tiny packets. *)
  let sw = Switch.create_exn Mp5_apps.Sources.acl in
  let rng = Rng.create 6 in
  let k = 4 in
  let trace =
    Array.init 2000 (fun i ->
        {
          Machine.time = i / k;
          port = i mod k;
          headers = [| Rng.int rng 64; Rng.int rng 64; 0; 0 |];
        })
  in
  let r = Switch.run ~k sw trace in
  check "line rate" true (r.Mp5_core.Sim.normalized_throughput > 0.999);
  check_int "never queued" 0 r.Mp5_core.Sim.max_queue

let () =
  Alcotest.run "table"
    [
      ( "lookup",
        [
          Alcotest.test_case "empty default" `Quick test_empty_default;
          Alcotest.test_case "exact match" `Quick test_exact_match;
          Alcotest.test_case "ternary mask" `Quick test_ternary_mask;
          Alcotest.test_case "wildcard" `Quick test_wildcard;
          Alcotest.test_case "priority" `Quick test_priority;
          Alcotest.test_case "priority ties" `Quick test_priority_tie_insertion_order;
          Alcotest.test_case "clear" `Quick test_clear;
          Alcotest.test_case "arity checks" `Quick test_arity_checks;
          Alcotest.test_case "expression lookup" `Quick test_expr_lookup;
        ] );
      ( "integration",
        [
          Alcotest.test_case "parse and typecheck" `Quick test_parse_and_typecheck;
          Alcotest.test_case "surface errors" `Quick test_surface_errors;
          Alcotest.test_case "golden uses table" `Quick test_golden_uses_table;
          Alcotest.test_case "MP5 equivalent with table" `Quick test_mp5_equivalent_with_table;
          Alcotest.test_case "table guard resolvable" `Quick test_table_guard_is_resolvable;
          Alcotest.test_case "capability: no match unit" `Quick test_capability_no_match_unit;
          Alcotest.test_case "line rate when allowed" `Quick test_mp5_line_rate_when_mostly_allowed;
        ] );
    ]
