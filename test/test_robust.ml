(* Supervisor and chaos-harness unit tests.

   The supervisor is exercised with tiny child closures that exit,
   crash, or stall on demand — each verdict shape (completed after N
   restarts, failed on a non-retryable exit, gave up at the budget) is
   pinned, along with the backoff curve and the heartbeat file protocol.
   The chaos layer's pure pieces — case generation, the textual repro
   round-trip, the delta-debugging shrinker — are tested without
   processes, and one real supervised campaign with a kill and a torn
   checkpoint runs end to end and must recover bit-identically. *)

module Supervisor = Mp5_robust.Supervisor
module Chaos = Mp5_robust.Chaos
module Binio = Mp5_util.Binio

let fresh_dir =
  let n = ref 0 in
  fun () ->
    incr n;
    let d =
      Filename.concat (Filename.get_temp_dir_name ())
        (Printf.sprintf "mp5-robust-%d-%d" (Unix.getpid ()) !n)
    in
    if not (Sys.file_exists d) then Unix.mkdir d 0o700;
    d

(* --- backoff --- *)

let test_backoff () =
  let b restart = Supervisor.backoff ~base:0.1 ~cap:2.0 ~restart in
  Alcotest.(check (float 1e-9)) "restart 1" 0.1 (b 1);
  Alcotest.(check (float 1e-9)) "restart 2" 0.2 (b 2);
  Alcotest.(check (float 1e-9)) "restart 3" 0.4 (b 3);
  Alcotest.(check (float 1e-9)) "restart 5" 1.6 (b 5);
  Alcotest.(check (float 1e-9)) "capped" 2.0 (b 6);
  Alcotest.(check (float 1e-9)) "stays capped" 2.0 (b 40)

(* --- heartbeat file protocol --- *)

let test_heartbeat () =
  let dir = fresh_dir () in
  let path = Filename.concat dir "beat.hb" in
  let hb = Supervisor.Heartbeat.create ~path in
  let read () = In_channel.with_open_bin path In_channel.input_all in
  Supervisor.Heartbeat.beat hb ~cycle:7;
  let a = read () in
  Supervisor.Heartbeat.beat hb ~cycle:8;
  let b = read () in
  Alcotest.(check bool) "content changes across beats" true (a <> b);
  (* Same cycle twice: the sequence number must still change the file. *)
  Supervisor.Heartbeat.beat hb ~cycle:8;
  let c = read () in
  Alcotest.(check bool) "same cycle still changes content" true (b <> c);
  Alcotest.(check bool) "fixed-width line" true
    (String.length a = String.length c);
  Supervisor.Heartbeat.close hb

(* --- supervisor verdicts ---

   Children are closures that fork-exec nothing: they write snapshots /
   raise signals on themselves directly.  Timings are tightened so the
   whole group runs in well under a second. *)

let config ~dir ?(max_restarts = 3) ?(retryable = fun e ->
    match e with Supervisor.Exited _ -> false | _ -> true) logs =
  let snapshot_path = Filename.concat dir "run.snap" in
  {
    (Supervisor.default ~snapshot_path) with
    hang_timeout = 0.4;
    poll_interval = 0.02;
    max_restarts;
    backoff_base = 0.01;
    backoff_max = 0.02;
    retryable;
    log = (fun line -> logs := line :: !logs);
  }

let magic = Mp5_core.Sim.snapshot_magic

(* A minimal well-framed snapshot the rotation chain will validate. *)
let snapshot_bytes tag =
  let w = Binio.writer () in
  Binio.w_string w tag;
  Binio.to_string ~magic w

let test_completed_clean () =
  let dir = fresh_dir () in
  let logs = ref [] in
  let cfg = config ~dir logs in
  let verdict =
    Supervisor.supervise cfg ~child:(fun ~attempt ~resume ->
        assert (attempt = 0);
        assert (resume = None);
        0)
  in
  (match verdict with
  | Supervisor.Completed { restarts } ->
      Alcotest.(check int) "no restarts" 0 restarts
  | v -> Alcotest.failf "expected Completed, got %a" Supervisor.pp_verdict v);
  let transcript = List.rev !logs in
  Alcotest.(check bool) "fresh-start line" true
    (List.exists (fun l -> l = "[supervisor] leg 0: fresh start") transcript);
  Alcotest.(check bool) "completion line" true
    (List.exists (fun l -> l = "[supervisor] run completed after 0 restarts") transcript)

let test_restart_resumes_from_snapshot () =
  let dir = fresh_dir () in
  let logs = ref [] in
  let cfg = config ~dir logs in
  let verdict =
    Supervisor.supervise cfg ~child:(fun ~attempt ~resume ->
        match attempt with
        | 0 ->
            assert (resume = None);
            Binio.write_rotated ~path:cfg.Supervisor.snapshot_path
              ~keep:cfg.Supervisor.keep_snapshots (snapshot_bytes "leg0");
            Unix.kill (Unix.getpid ()) Sys.sigkill;
            125
        | _ -> (
            match resume with
            | Some (slot, contents) ->
                assert (slot = cfg.Supervisor.snapshot_path);
                let r = Result.get_ok (Binio.of_string ~magic contents) in
                assert (Binio.r_string r = "leg0");
                0
            | None -> 7))
  in
  (match verdict with
  | Supervisor.Completed { restarts } -> Alcotest.(check int) "one restart" 1 restarts
  | v -> Alcotest.failf "expected Completed, got %a" Supervisor.pp_verdict v);
  let transcript = List.rev !logs in
  Alcotest.(check bool) "kill reported" true
    (List.exists (fun l -> l = "[supervisor] leg 0 killed by SIGKILL") transcript);
  Alcotest.(check bool) "backoff line" true
    (List.exists (fun l -> l = "[supervisor] restart 1/3 after 0.01s backoff") transcript);
  Alcotest.(check bool) "resume line names the slot" true
    (List.exists (fun l -> l = "[supervisor] leg 1: resume from run.snap") transcript)

let test_torn_snapshot_falls_back () =
  let dir = fresh_dir () in
  let logs = ref [] in
  let cfg = config ~dir logs in
  let verdict =
    Supervisor.supervise cfg ~child:(fun ~attempt ~resume ->
        match attempt with
        | 0 ->
            (* A good checkpoint, then a torn newer one: rotate shifts
               the good one to .1 and the crash leaves garbage in the
               newest slot. *)
            Binio.write_rotated ~path:cfg.Supervisor.snapshot_path
              ~keep:cfg.Supervisor.keep_snapshots (snapshot_bytes "good");
            Binio.rotate ~path:cfg.Supervisor.snapshot_path
              ~keep:cfg.Supervisor.keep_snapshots;
            Out_channel.with_open_bin cfg.Supervisor.snapshot_path (fun oc ->
                Out_channel.output_string oc
                  (String.sub (snapshot_bytes "torn") 0 9));
            Unix.kill (Unix.getpid ()) Sys.sigkill;
            125
        | _ -> (
            match resume with
            | Some (slot, contents) ->
                assert (slot = cfg.Supervisor.snapshot_path ^ ".1");
                let r = Result.get_ok (Binio.of_string ~magic contents) in
                assert (Binio.r_string r = "good");
                0
            | None -> 7))
  in
  match verdict with
  | Supervisor.Completed { restarts } -> Alcotest.(check int) "one restart" 1 restarts
  | v -> Alcotest.failf "expected Completed, got %a" Supervisor.pp_verdict v

let test_nonretryable_exit_fails () =
  let dir = fresh_dir () in
  let logs = ref [] in
  let cfg = config ~dir logs in
  let verdict = Supervisor.supervise cfg ~child:(fun ~attempt:_ ~resume:_ -> 3) in
  match verdict with
  | Supervisor.Failed { restarts; last = Supervisor.Exited 3 } ->
      Alcotest.(check int) "no restarts burned" 0 restarts
  | v -> Alcotest.failf "expected Failed (exit 3), got %a" Supervisor.pp_verdict v

let test_budget_exhaustion_gives_up () =
  let dir = fresh_dir () in
  let logs = ref [] in
  let cfg = config ~dir ~max_restarts:2 logs in
  let verdict =
    Supervisor.supervise cfg ~child:(fun ~attempt:_ ~resume:_ ->
        Unix.kill (Unix.getpid ()) Sys.sigkill;
        125)
  in
  (match verdict with
  | Supervisor.Gave_up { restarts; last = Supervisor.Signaled s } ->
      Alcotest.(check int) "budget spent" 2 restarts;
      Alcotest.(check int) "last end is SIGKILL" Sys.sigkill s
  | v -> Alcotest.failf "expected Gave_up, got %a" Supervisor.pp_verdict v);
  let transcript = List.rev !logs in
  Alcotest.(check bool) "gave-up line" true
    (List.exists
       (fun l ->
         l
         = "[supervisor] restart budget exhausted (2): giving up; latest snapshot kept \
            at run.snap")
       transcript)

let test_watchdog_kills_hung_child () =
  let dir = fresh_dir () in
  let logs = ref [] in
  let cfg = config ~dir ~max_restarts:1 logs in
  let verdict =
    Supervisor.supervise cfg ~child:(fun ~attempt ~resume:_ ->
        if attempt = 0 then (
          (* Beat once, then stall well past the hang deadline. *)
          let hb = Supervisor.Heartbeat.create ~path:cfg.Supervisor.heartbeat_path in
          Supervisor.Heartbeat.beat hb ~cycle:1;
          Unix.sleepf 30.0;
          125)
        else 0)
  in
  match verdict with
  | Supervisor.Completed { restarts } ->
      Alcotest.(check int) "watchdog burned one restart" 1 restarts;
      Alcotest.(check bool) "hang reported" true
        (List.exists
           (fun l -> l = "[supervisor] leg 0 hung (watchdog)")
           (List.rev !logs))
  | v -> Alcotest.failf "expected Completed after hang, got %a" Supervisor.pp_verdict v

(* --- chaos: pure pieces --- *)

let test_generate_deterministic () =
  for seed = 0 to 19 do
    let a = Chaos.generate ~seed and b = Chaos.generate ~seed in
    Alcotest.(check string)
      (Printf.sprintf "seed %d stable" seed)
      (Chaos.case_to_string a) (Chaos.case_to_string b);
    Alcotest.(check bool) "has crashes" true (a.Chaos.cs_crashes <> []);
    Alcotest.(check bool) "sane k" true (a.Chaos.cs_k >= 2)
  done

let test_case_roundtrip () =
  for seed = 0 to 39 do
    let case = Chaos.generate ~seed in
    match Chaos.case_of_string (Chaos.case_to_string case) with
    | Error m -> Alcotest.failf "seed %d: round-trip failed: %s" seed m
    | Ok back ->
        Alcotest.(check string)
          (Printf.sprintf "seed %d round-trips" seed)
          (Chaos.case_to_string case) (Chaos.case_to_string back)
  done;
  (match Chaos.case_of_string "not a case" with
  | Ok _ -> Alcotest.fail "garbage accepted"
  | Error _ -> ());
  match Chaos.case_of_string "mp5-chaos-case/1\ncrash kill @nope\n" with
  | Ok _ -> Alcotest.fail "malformed crash line accepted"
  | Error _ -> ()

let test_shrink_minimizes () =
  (* A case fails iff it still schedules a wedge: the shrinker must strip
     everything else (events, other crashes, excess packets) and keep
     exactly one wedge. *)
  let case = Chaos.generate ~seed:11 in
  let case =
    {
      case with
      Chaos.cs_crashes =
        [ Chaos.Kill_at 10; Chaos.Wedge_at 20; Chaos.Torn_checkpoint (1, Chaos.Mid_write) ];
    }
  in
  let fails c =
    List.exists (function Chaos.Wedge_at _ -> true | _ -> false) c.Chaos.cs_crashes
  in
  let minimal, probes = Chaos.shrink ~fails case in
  Alcotest.(check bool) "still fails" true (fails minimal);
  Alcotest.(check int) "single crash kept" 1 (List.length minimal.Chaos.cs_crashes);
  Alcotest.(check (list string)) "no plan events left" []
    (List.map (fun _ -> "event") minimal.Chaos.cs_plan.Mp5_fault.Fault.events);
  Alcotest.(check bool) "packets reduced to the floor" true
    (minimal.Chaos.cs_packets <= 16);
  Alcotest.(check bool) "probes counted" true (probes > 0)

let test_shrink_respects_budget () =
  let case = Chaos.generate ~seed:4 in
  let probed = ref 0 in
  let fails _ = incr probed; true in
  let _, probes = Chaos.shrink ~fails ~budget:5 case in
  Alcotest.(check bool) "stops at the budget" true (probes <= 5)

let test_repro_artifact () =
  let dir = fresh_dir () in
  let case = Chaos.generate ~seed:21 in
  let path = Chaos.write_repro ~dir ~reason:"digest mismatch" case in
  let text = In_channel.with_open_bin path In_channel.input_all in
  Alcotest.(check bool) "reason recorded as comment" true
    (String.length text > 0
    && List.exists
         (fun l -> l = "# reason: digest mismatch")
         (String.split_on_char '\n' text));
  match Chaos.case_of_string text with
  | Ok back ->
      Alcotest.(check string) "artifact loads back" (Chaos.case_to_string case)
        (Chaos.case_to_string back)
  | Error m -> Alcotest.failf "artifact unreadable: %s" m

(* --- chaos: one real supervised campaign --- *)

let test_run_case_recovers () =
  let dir = fresh_dir () in
  let case = Chaos.generate ~seed:1 in
  let case =
    {
      case with
      Chaos.cs_crashes =
        [ Chaos.Kill_at 25; Chaos.Torn_checkpoint (1, Chaos.Mid_write) ];
    }
  in
  let o = Chaos.run_case ~dir case in
  (match o.Chaos.co_failure with
  | None -> ()
  | Some r -> Alcotest.failf "campaign failed: %s" r);
  Alcotest.(check int) "both crashes recovered" 2 o.Chaos.co_restarts

let test_sabotage_skips_processes () =
  let dir = fresh_dir () in
  let case = Chaos.generate ~seed:2 in
  let o = Chaos.run_case ~dir ~sabotage:(fun _ -> true) case in
  (match o.Chaos.co_failure with
  | Some _ -> ()
  | None -> Alcotest.fail "sabotaged case reported success");
  let o = Chaos.run_case ~dir ~sabotage:(fun _ -> false) case in
  match o.Chaos.co_failure with
  | None -> ()
  | Some r -> Alcotest.failf "unsabotaged case failed: %s" r

let () =
  Alcotest.run "robust"
    [
      ( "supervisor",
        [
          Alcotest.test_case "backoff doubles then caps" `Quick test_backoff;
          Alcotest.test_case "heartbeat content changes every beat" `Quick test_heartbeat;
          Alcotest.test_case "clean leg completes with 0 restarts" `Quick
            test_completed_clean;
          Alcotest.test_case "SIGKILLed leg restarts from its snapshot" `Quick
            test_restart_resumes_from_snapshot;
          Alcotest.test_case "torn newest snapshot falls back a slot" `Quick
            test_torn_snapshot_falls_back;
          Alcotest.test_case "non-retryable exit fails without retry" `Quick
            test_nonretryable_exit_fails;
          Alcotest.test_case "restart budget exhaustion gives up" `Quick
            test_budget_exhaustion_gives_up;
          Alcotest.test_case "watchdog SIGKILLs a hung child" `Quick
            test_watchdog_kills_hung_child;
        ] );
      ( "chaos",
        [
          Alcotest.test_case "generate is deterministic" `Quick test_generate_deterministic;
          Alcotest.test_case "case text round-trips" `Quick test_case_roundtrip;
          Alcotest.test_case "shrink reaches the minimal failing case" `Quick
            test_shrink_minimizes;
          Alcotest.test_case "shrink respects its probe budget" `Quick
            test_shrink_respects_budget;
          Alcotest.test_case "repro artifact records reason and loads back" `Quick
            test_repro_artifact;
          Alcotest.test_case "kill + torn-checkpoint campaign recovers bit-identically"
            `Quick test_run_case_recovers;
          Alcotest.test_case "sabotage hook decides without processes" `Quick
            test_sabotage_skips_processes;
        ] );
    ]
