(* Tests for the functional-equivalence checker and C1 metrics, on
   hand-crafted inputs. *)

module Equiv = Mp5_core.Equiv
module Machine = Mp5_banzai.Machine
module Store = Mp5_banzai.Store
module Switch = Mp5_core.Switch

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

(* Build a golden result directly by running the counter program. *)
let golden_and_parts () =
  let sw = Switch.create_exn Mp5_apps.Sources.sequencer in
  let trace =
    Array.init 6 (fun i ->
        { Machine.time = i; port = 0; headers = [| i mod 2; 0 |] })
  in
  (sw, trace, Switch.golden sw trace)

let seqs_of golden = golden.Machine.access_seqs

let copy_seqs seqs =
  let t = Hashtbl.create 8 in
  Hashtbl.iter (fun k v -> Hashtbl.replace t k v) seqs;
  t

let headers_of golden =
  Array.to_list (Array.mapi (fun i h -> (i, h)) golden.Machine.headers_out)

let test_identical_is_equivalent () =
  let _, trace, golden = golden_and_parts () in
  let rep =
    Equiv.compare ~golden ~n_packets:(Array.length trace) ~store:golden.Machine.store
      ~headers_out:(headers_of golden) ~access_seqs:(copy_seqs (seqs_of golden))
      ~exit_order:(List.init 6 Fun.id) ()
  in
  check "equivalent" true (Equiv.equivalent rep);
  check_int "no violations" 0 rep.Equiv.c1_violations;
  check_int "no reordered flows" 0 rep.Equiv.reordered_flows

let test_register_diff_detected () =
  let _, trace, golden = golden_and_parts () in
  let store = Store.copy golden.Machine.store in
  Store.set store ~reg:0 ~idx:0 999;
  let rep =
    Equiv.compare ~golden ~n_packets:(Array.length trace) ~store
      ~headers_out:(headers_of golden) ~access_seqs:(copy_seqs (seqs_of golden))
      ~exit_order:[] ()
  in
  check "not equivalent" false (Equiv.equivalent rep);
  check "register flagged" false rep.Equiv.register_equal;
  (match rep.Equiv.register_diffs with
  | [ (0, 0, golden_v, 999) ] -> check "diff reports both values" true (golden_v <> 999)
  | _ -> Alcotest.fail "expected exactly one diff")

let test_packet_diff_detected () =
  let _, trace, golden = golden_and_parts () in
  let headers = headers_of golden in
  let headers = (fst (List.hd headers), [| 42; 42 |]) :: List.tl headers in
  let rep =
    Equiv.compare ~golden ~n_packets:(Array.length trace) ~store:golden.Machine.store
      ~headers_out:headers ~access_seqs:(copy_seqs (seqs_of golden)) ~exit_order:[] ()
  in
  check "packet flagged" false rep.Equiv.packets_equal;
  Alcotest.(check (list int)) "which packet" [ 0 ] rep.Equiv.packet_diffs

let test_missing_packet_detected () =
  let _, trace, golden = golden_and_parts () in
  let headers = List.tl (headers_of golden) in
  let rep =
    Equiv.compare ~golden ~n_packets:(Array.length trace) ~store:golden.Machine.store
      ~headers_out:headers ~access_seqs:(copy_seqs (seqs_of golden)) ~exit_order:[] ()
  in
  check "not equivalent" false (Equiv.equivalent rep);
  Alcotest.(check (list int)) "missing id" [ 0 ] rep.Equiv.missing_packets

let test_c1_inversion_counts_overtaker () =
  let _, trace, golden = golden_and_parts () in
  (* Swap two accesses of one cell: exactly one packet overtook. *)
  let seqs = copy_seqs (seqs_of golden) in
  let key, order = Hashtbl.fold (fun k v _ -> (k, v)) seqs ((0, 0), []) in
  (match order with
  | a :: b :: rest -> Hashtbl.replace seqs key (b :: a :: rest)
  | _ -> Alcotest.fail "expected at least two accesses");
  let rep =
    Equiv.compare ~golden ~n_packets:(Array.length trace) ~store:golden.Machine.store
      ~headers_out:(headers_of golden) ~access_seqs:seqs ~exit_order:[] ()
  in
  check_int "one violator (the overtaker)" 1 rep.Equiv.c1_violations

let test_c1_spurious_access () =
  let _, trace, golden = golden_and_parts () in
  let seqs = copy_seqs (seqs_of golden) in
  Hashtbl.replace seqs (5, 17) [ 3 ];
  let rep =
    Equiv.compare ~golden ~n_packets:(Array.length trace) ~store:golden.Machine.store
      ~headers_out:(headers_of golden) ~access_seqs:seqs ~exit_order:[] ()
  in
  check "spurious access counted" true (rep.Equiv.c1_violations >= 1)

let test_c1_fraction () =
  let _, trace, golden = golden_and_parts () in
  let rep =
    Equiv.compare ~golden ~n_packets:(Array.length trace) ~store:golden.Machine.store
      ~headers_out:(headers_of golden) ~access_seqs:(copy_seqs (seqs_of golden))
      ~exit_order:[] ()
  in
  check "fraction zero" true (rep.Equiv.c1_fraction = 0.0)

let test_reordered_flows () =
  let _, trace, golden = golden_and_parts () in
  let flow_of seq = seq mod 2 in
  (* Exit order 0,2,4 then 3,1,5: flow 1 sees 3 before 1 -> reordered. *)
  let rep =
    Equiv.compare ~golden ~n_packets:(Array.length trace) ~store:golden.Machine.store
      ~headers_out:(headers_of golden) ~access_seqs:(copy_seqs (seqs_of golden)) ~flow_of
      ~exit_order:[ 0; 2; 4; 3; 1; 5 ] ()
  in
  check_int "one reordered flow" 1 rep.Equiv.reordered_flows;
  (* In-order exits: none. *)
  let rep2 =
    Equiv.compare ~golden ~n_packets:(Array.length trace) ~store:golden.Machine.store
      ~headers_out:(headers_of golden) ~access_seqs:(copy_seqs (seqs_of golden)) ~flow_of
      ~exit_order:[ 0; 1; 2; 3; 4; 5 ] ()
  in
  check_int "none reordered" 0 rep2.Equiv.reordered_flows

let test_pp_smoke () =
  let _, trace, golden = golden_and_parts () in
  let rep =
    Equiv.compare ~golden ~n_packets:(Array.length trace) ~store:golden.Machine.store
      ~headers_out:(headers_of golden) ~access_seqs:(copy_seqs (seqs_of golden))
      ~exit_order:[] ()
  in
  let s = Format.asprintf "%a" Equiv.pp rep in
  check "mentions registers" true
    (String.length s > 0 && String.sub s 0 9 = "registers")

let () =
  Alcotest.run "equiv"
    [
      ( "equiv",
        [
          Alcotest.test_case "identical" `Quick test_identical_is_equivalent;
          Alcotest.test_case "register diff" `Quick test_register_diff_detected;
          Alcotest.test_case "packet diff" `Quick test_packet_diff_detected;
          Alcotest.test_case "missing packet" `Quick test_missing_packet_detected;
          Alcotest.test_case "inversion counts overtaker" `Quick
            test_c1_inversion_counts_overtaker;
          Alcotest.test_case "spurious access" `Quick test_c1_spurious_access;
          Alcotest.test_case "fraction" `Quick test_c1_fraction;
          Alcotest.test_case "reordered flows" `Quick test_reordered_flows;
          Alcotest.test_case "pretty printer" `Quick test_pp_smoke;
        ] );
    ]
