Simulating a built-in application verifies functional equivalence:

  $ ../../bin/mp5sim.exe --app sequencer --pipelines 4 --packets 2000 --seed 3
  4 pipelines, 2000 packets: throughput 1.000, max queue 2, dropped 0
  registers equal (0 diffs), packets equal (0 diffs, 0 missing), C1 violations 0 (0.0%), reordered flows 0

The naive single-pipeline baseline pays the 1/k throughput cost:

  $ ../../bin/mp5sim.exe --app packet_counter --pipelines 4 --packets 2000 --mode naive --seed 3 | head -1
  4 pipelines, 2000 packets: throughput 1.000, max queue 1, dropped 0

Known programs are listed:

  $ ../../bin/mp5sim.exe --list-apps | head -4
  figure3
  packet_counter
  sequencer
  flowlet

The parallel cycle engine produces bit-identical digests to the
sequential engine (same seed, same program, any job count):

  $ ../../bin/mp5sim.exe --app flowlet --pipelines 8 --packets 4000 --seed 11 --stream --engine seq | grep digests
  digests: exits 17b2de4ec5f2c87f, access 113d004e27adb3a3
  $ ../../bin/mp5sim.exe --app flowlet --pipelines 8 --packets 4000 --seed 11 --stream --engine par --jobs 2 | grep digests
  digests: exits 17b2de4ec5f2c87f, access 113d004e27adb3a3
  $ ../../bin/mp5sim.exe --app flowlet --pipelines 8 --packets 4000 --seed 11 --stream --engine par --jobs 8 | grep digests
  digests: exits 17b2de4ec5f2c87f, access 113d004e27adb3a3

The parallel engine refuses flag combinations it cannot honor:

  $ ../../bin/mp5sim.exe --app flowlet --engine par --runs 2
  mp5sim: --engine par applies to single runs (drop --runs)
  [1]
