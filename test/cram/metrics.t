--report prints the one-screen telemetry summary after the run:

  $ ../../bin/mp5sim.exe --app heavy_hitter --pipelines 4 --packets 2000 --seed 3 --report
  4 pipelines, 2000 packets: throughput 1.000, max queue 2, dropped 0
  registers equal (0 diffs), packets equal (0 diffs, 0 missing), C1 violations 0 (0.0%), reordered flows 0
  run: 4863 cycles, 4 stages x 4 pipelines
  packets: 2000 arrived, 2000 delivered, 0 dropped (fifo_full 0, no_phantom 0, starved 0), 0 ECN-marked
  latency: mean 3.0  p50 3  p99 4  max 4 cycles
  slots: busy 10.3%  idle 89.7%  blocked-on-phantom 0.0%  (stateless claims 0.0%)
  crossbar: 6000 transfers, 1394 cross-pipeline (23.2%)
  phantoms: 2000 scheduled, 2000 delivered, 0 doomed, 0 dropped
  queues: occupancy p50 0  p99 0  high-water 1
  remaps: 62 periods, 2 moves, avg imbalance 13 -> 10

--metrics writes the same counters as a schema-tagged JSON snapshot
(re-validated on write: a broken snapshot fails the run), --metrics-prom
as Prometheus text exposition:

  $ ../../bin/mp5sim.exe --app heavy_hitter --pipelines 4 --packets 2000 --seed 3 \
  >   --metrics m.json --metrics-prom m.prom > /dev/null
  $ grep -o '"schema": "mp5-metrics/1"' m.json
  "schema": "mp5-metrics/1"
  $ grep -c '"cycles": 4863' m.json
  1
  $ grep -m 2 '^mp5_' m.prom
  mp5_cycles 4863
  mp5_slot_cycles{stage="0",pipe="0",state="busy"} 1786

--trace records a structured packet-event trace as JSONL;
--trace-packets narrows it to a few packet ids (system events such as
remaps always pass the filter):

  $ ../../bin/mp5sim.exe --app heavy_hitter --pipelines 4 --packets 2000 --seed 3 \
  >   --trace t.jsonl --trace-packets 5,17 > /dev/null
  $ head -1 t.jsonl
  {"schema": "mp5-trace/1", "events": 20, "recorded": 20, "truncated": false}
  $ grep -c '"ev": "arrival"' t.jsonl
  2
  $ grep -c '"ev": "deliver"' t.jsonl
  2
  $ grep '"seq": 42' t.jsonl
  [1]
