Streaming runs, checkpointing and resume from the command line.

A streamed run pulls packets from the generator one at a time and
reports digests in place of the per-packet lists (functional
equivalence against the golden switch needs the whole trace in memory,
so streaming runs pin their observables through the digests instead —
the differential suite proves digest equality = array-run equality):

  $ ../../bin/mp5sim.exe --app flowlet --pipelines 4 --packets 3000 --seed 3 --stream
  4 pipelines, 3000 packets (streamed): throughput 1.000, max queue 2, dropped 0
  digests: exits 132196e5102d98a9, access 0734d2662c118250

--checkpoint-every snapshots the complete machine state as the run
goes; resuming from the last checkpoint replays the consumed prefix of
the rebuilt source, restores the machine, and finishes with exactly the
same digests as the uninterrupted run above:

  $ ../../bin/mp5sim.exe --app flowlet --pipelines 4 --packets 3000 --seed 3 \
  >   --checkpoint-every 150 --snapshot flowlet.snap > /dev/null
  $ ../../bin/mp5sim.exe --app flowlet --pipelines 4 --packets 3000 --seed 3 \
  >   --resume flowlet.snap
  4 pipelines, 3000 packets (streamed): throughput 1.000, max queue 2, dropped 0
  digests: exits 132196e5102d98a9, access 0734d2662c118250

A corrupt snapshot with no intact rotation slot behind it is an input
error (exit 2), rejected up front with a byte-positioned reason —
truncation and bit flips both die on the framing's length and checksum
checks, never half-applied:

  $ head -c 400 flowlet.snap > truncated.snap
  $ ../../bin/mp5sim.exe --app flowlet --pipelines 4 --packets 3000 --seed 3 \
  >   --resume truncated.snap
  mp5sim: cannot read snapshot: truncated.snap: byte 400: truncated payload
  [2]

A well-formed snapshot that fails validation on resume — taken against
a different program, or against a different packet stream than the one
being resumed — is an invariant failure (exit 3):

  $ ../../bin/mp5sim.exe --app sequencer --pipelines 4 --packets 3000 --seed 3 \
  >   --resume flowlet.snap
  mp5sim: snapshot mismatch: snapshot was taken against a different program
  [3]

  $ ../../bin/mp5sim.exe --app flowlet --pipelines 4 --packets 3000 --seed 99 \
  >   --resume flowlet.snap
  mp5sim: snapshot mismatch: source does not replay the checkpointed run's packets
  [3]

Usage errors stay usage errors (exit 1):

  $ ../../bin/mp5sim.exe --app flowlet --checkpoint-every 100
  mp5sim: --checkpoint-every requires --snapshot FILE
  [1]
  $ ../../bin/mp5sim.exe --app flowlet --resume flowlet.snap --fault-plan 'seed 1; down @10 pipe=0'
  mp5sim: --resume takes its fault plan from the snapshot (drop --fault-plan)
  [1]

Streaming also reads a trace from stdin in constant memory:

  $ printf '0 1 5 0\n0 2 9 0\n1 1 5 0\n2 3 7 0\n' \
  >   | ../../bin/mp5sim.exe --app flowlet --pipelines 2 --stream --trace-file -
  2 pipelines, 4 packets (streamed): throughput 0.750, max queue 2, dropped 0
  digests: exits 282ac9b0611f460a, access 3a268f7f315dac4f
