Multi-switch fabric simulation from the command line.  --fab-print
pins the topology and the compiled shortest-path forwarding tables for
a 2x2 leaf-spine: links are listed in id order (switch-switch trunk
first, then host edges), and each switch's table maps dst-prefix to an
egress port:

  $ ../../bin/mp5sim.exe --app heavy_hitter --fabric leafspine:2x2,hosts=2,delay=1 --fab-print
  switches: 4
  hosts: 4
  links: 16
    h0 on s0 (up l8, down l9)
    h1 on s0 (up l10, down l11)
    h2 on s1 (up l12, down l13)
    h3 on s1 (up l14, down l15)
    l0: s0 -> s2 delay=1
    l1: s2 -> s0 delay=1
    l2: s0 -> s3 delay=1
    l3: s3 -> s0 delay=1
    l4: s1 -> s2 delay=1
    l5: s2 -> s1 delay=1
    l6: s1 -> s3 delay=1
    l7: s3 -> s1 delay=1
    l8: h0 -> s0 delay=0
    l9: s0 -> h0 delay=0
    l10: h1 -> s0 delay=0
    l11: s0 -> h1 delay=0
    l12: h2 -> s1 delay=0
    l13: s1 -> h2 delay=0
    l14: h3 -> s1 delay=0
    l15: s1 -> h3 delay=0
  
  routing: 2 bits
    s0: 0/2->p2 1/2->p3 1/1->p0
    s1: 0/1->p0 2/2->p2 3/2->p3
    s2: 0/1->p0 1/1->p1
    s3: 0/1->p0 1/1->p1
  


A fabric run is deterministic down to the digests, and --jobs only
changes which domain steps which switch — the sequential run and the
4-domain run print the same bytes:

  $ ../../bin/mp5sim.exe --app heavy_hitter --fabric leafspine:2x2,hosts=2,delay=1 \
  >   --packets 2000 --monitor | tee jobs1.out
  fabric: 4 switches, 4 hosts
  injected:     2000
  delivered:    2000
  dropped:      0 (node) + 0 (fwd miss) + 0 (link)
  cycles:       1014
  throughput:   1.9724 pkts/cycle
  hop latency:  p50=3 p99=7 max=7
  e2e latency:  p50=15 p99=15 max=17
  hops:         mean=2.33 max=3
  exit digest:   2d6d8cd53f09a6d5
  access digest: 2b326b2fd4f0d0c9
  store digest:  1985247bd71173e2
  monitor: 17 epochs checked, 0 violations

  $ ../../bin/mp5sim.exe --app heavy_hitter --fabric leafspine:2x2,hosts=2,delay=1 \
  >   --packets 2000 --monitor --jobs 4 > jobs4.out
  $ cmp jobs1.out jobs4.out

Link faults ride along via --fab-plan: taking the first trunk link down
drops every packet routed onto it during the window, and the fabric-wide
conservation monitor stays green because link drops are accounted:

  $ ../../bin/mp5sim.exe --app heavy_hitter --fabric line:2,hosts=1,delay=2 --packets 400 \
  >   --monitor --fab-plan 'link-down @0..200 link=0; link-delay @0..200 link=1 extra=5'
  fabric: 2 switches, 2 hosts
  injected:     400
  delivered:    298
  dropped:      0 (node) + 0 (fwd miss) + 102 (link)
  cycles:       410
  throughput:   0.7268 pkts/cycle
  hop latency:  p50=3 p99=3 max=5
  e2e latency:  p50=15 p99=15 max=14
  hops:         mean=2.00 max=2
  exit digest:   0019468c9c3bc950
  access digest: 207bbfe6bf6deb8b
  store digest:  1b13f7bc72694b22
  monitor: 8 epochs checked, 0 violations

Exit-code contract.  Usage errors are 1: --fabric is a single streamed
run (no --runs), and the fab-* satellites require --fabric:

  $ ../../bin/mp5sim.exe --app heavy_hitter --fabric leafspine:2x2,hosts=2,delay=1 \
  >   --packets 500 --runs 3
  mp5sim: --fabric is a single generated-traffic run (drop --runs/--recirc/streaming flags/--trace-file; link faults go through --fab-plan)
  [1]

  $ ../../bin/mp5sim.exe --app heavy_hitter --fab-plan 'link-down @0..10 link=0' --packets 500
  mp5sim: --fab-* flags require --fabric SPEC
  [1]

Bad input is 2: an unknown topology shape, or a link plan naming a link
the fabric does not have:

  $ ../../bin/mp5sim.exe --app heavy_hitter --fabric hypercube:3 --packets 500
  mp5sim: bad topology spec: topo spec "hypercube:3": unknown shape "hypercube" (known: line, tree, fattree, leafspine, edges)
  [2]

  $ ../../bin/mp5sim.exe --app heavy_hitter --fabric leafspine:2x2,hosts=2,delay=1 \
  >   --packets 500 --fab-plan 'link-down @0..10 link=99'
  mp5sim: bad link plan: link plan: link-down @0..10 link=99: link 99 out of range (fabric has 16 links)
  [2]

A detected invariant violation is 3: --fab-sabotage skews the injected
counter so the conservation check must fire (the testing hook that
proves the monitor is not vacuous):

  $ ../../bin/mp5sim.exe --app heavy_hitter --fabric leafspine:2x2,hosts=2,delay=1 \
  >   --packets 500 --monitor --fab-sabotage
  monitor: cycle 300: fabric conservation violated at cycle 300: injected 501 <> 500 accounted (0 in switches + 0 queued + 0 on links + 500 delivered + 0 node-dropped + 0 fwd-miss + 0 link-dropped)
  [3]
