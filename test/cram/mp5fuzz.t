A short differential-fuzzing run over random programs:

  $ ../../bin/mp5fuzz.exe --count 10 --packets 100 --quiet
  all 10 seeds equivalent (k in 2,3,4,8, 100 packets each)
