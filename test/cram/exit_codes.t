The exit-code contract shared by mp5sim and the bench driver (see
README): 0 success, 1 usage error, 2 input error, 3 validation or
invariant failure, 4 interrupted-with-snapshot, 5 supervisor budget
exhausted.

Success is 0:

  $ ../../bin/mp5sim.exe --app packet_counter --packets 500 --seed 3 > /dev/null; echo "exit $?"
  exit 0

Usage errors are 1 — a missing program, or flag combinations that make
no sense:

  $ ../../bin/mp5sim.exe
  pass --app NAME or --file FILE
  [1]
  $ ../../bin/mp5sim.exe --app flowlet --runs 2 --fault-plan 'seed 1; down @10 pipe=0'
  mp5sim: --fault-plan applies to single runs only (drop --runs)
  [1]
  $ ../../bench/main.exe --jobs nope
  --jobs expects a positive integer, got "nope"
  [1]
  $ ../../bench/main.exe --smoke no-such-experiment 2>&1 | tail -1
  unknown experiment "no-such-experiment" (known: table1, sram, d2, d3, d4, fig7a, fig7b, fig7c, fig7d, fig8, ablate-priority, ablate-period, ablate-fifo, ablate-gate, degraded, sim-micro, sim-par, longrun, chaos, fabric, perf)
  $ ../../bench/main.exe --smoke no-such-experiment > /dev/null 2>&1; echo "exit $?"
  exit 1

Input errors are 2 — an unknown app, a malformed replay trace (with a
positioned reason), a fault plan that does not parse:

  $ ../../bin/mp5sim.exe --app no-such-app
  unknown app "no-such-app"; try --list-apps
  [2]
  $ ../../bin/mp5sim.exe --app flowlet --trace-file bad.trace
  bad.trace: byte 56 (line 3): 1 fields, expected 2 (truncated line?)
  [2]
  $ ../../bin/mp5sim.exe --app flowlet --fault-plan 'seed 1; frobnicate @10'
  mp5sim: bad fault plan: line 1: unknown fault event "frobnicate"
  [2]

Validation failures are 3: functional non-equivalence of an MP5-mode
run, a telemetry invariant violation, or a runtime-monitor violation.
On a healthy build these paths are deliberately unreachable — they are
regression detectors; the monitor's fail-fast exit is exercised by
test/test_fault.ml.  The contract is part of the manual:

  $ ../../bin/mp5sim.exe --help=plain | sed -n '/EXIT STATUS/,$p'
  EXIT STATUS
         mp5sim exits with:
  
         0   on success.
  
         1   on usage errors (missing program, bad flag combinations).
  
         2   on input errors (unknown app, malformed trace file or fault plan).
  
         3   on validation failures (functional non-equivalence, metrics or
             runtime-monitor invariant violations).
  
         4   when a streaming run is interrupted (SIGINT/SIGTERM or --stop-at)
             after flushing a final snapshot; resume with --resume.
  
         5   when --supervise exhausts its restart budget; the latest valid
             snapshot is kept for post-mortem resumption.
  






