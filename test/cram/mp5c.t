The compiler dumps the lowered Banzai configuration by default:

  $ ../../bin/mp5c.exe sample.domino
  === Banzai configuration ===
  fields: group, seqno, $counter_read2, $counter_read3, $out_seqno
  reg0 counter[8]
  stage 0:
    reg0[(f0 % 8)] := ($state + 1) {f3 <- new}
  stage 1:
    f4 := f3
  stage 2:
    f1 := f4
  

The MP5 transform adds the address-resolution stage and reports the plan:

  $ ../../bin/mp5c.exe --mp5 sample.domino | head -6
  === MP5 transformed program ===
  transformed config (4 stages, stage 0 = address resolution):
  access 0: reg0 (counter) at stage 1, guard always, index resolved
  reg0 counter: sharded
  
  fields: group, seqno, $counter_read2, $counter_read3, $out_seqno

Programs outside the atom template are rejected with the pipelining phase:

  $ ../../bin/mp5c.exe bad.domino
  bad.domino: pipelining error: register r: accesses with different index expressions cannot be fused into one atom
  [1]

Pretty-printing echoes the parsed program:

  $ ../../bin/mp5c.exe --pretty sample.domino
  struct Packet {
      int group;
      int seqno;
  };
  
  int counter[8];
  
  void func(struct Packet p) {
      counter[(p.group % 8)] = (counter[(p.group % 8)] + 1);
      p.seqno = counter[(p.group % 8)];
  }
