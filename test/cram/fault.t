Fault injection from the command line.  A plan file takes one pipeline
down at cycle 300 and back up at 2400; the runtime invariant monitor
rides along and stays green through the spill, the evacuation and the
recovery:

  $ ../../bin/mp5sim.exe --app flowlet --pipelines 4 --packets 3000 --seed 3 \
  >   --fault-plan pipedown.plan --monitor
  4 pipelines, 3000 packets: throughput 1.000, max queue 2, dropped 0
  registers equal (0 diffs), packets equal (0 diffs, 0 missing), C1 violations 0 (0.0%), reordered flows 0
  monitor: 147 epochs checked, 0 violations

An inline plan exercises every other event kind in one run — a stage
stall window, probabilistic crossbar drop and duplication, a FIFO slot
loss, delayed phantoms:

  $ ../../bin/mp5sim.exe --app flowlet --pipelines 4 --packets 3000 --seed 3 --monitor \
  >   --fault-plan 'seed 9; stall @200..400 stage=1 pipe=0; xbar-drop @100..900 p=0.05; xbar-dup @100..900 p=0.05; fifo-loss @250 stage=1 pipe=1; phantom-delay @300..600 extra=2'
  4 pipelines, 3000 packets: throughput 0.967, max queue 4, dropped 114
  registers DIFFER (2 diffs), packets DIFFER (1 diffs, 114 missing), C1 violations 0 (0.0%), reordered flows 0
  monitor: 147 epochs checked, 0 violations

The monitor verdict lands in a file for CI artifacts (--monitor-dump
implies --monitor):

  $ ../../bin/mp5sim.exe --app sequencer --pipelines 4 --packets 2000 --seed 3 \
  >   --fault-plan 'seed 5; down @200 pipe=2' --monitor-dump verdict.txt > /dev/null
  $ cat verdict.txt
  monitor: 99 epochs checked, 0 violations
