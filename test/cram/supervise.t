Crash-tolerant supervised runs (see README "Surviving crashes"): a
watchdog parent forks the streaming simulator, restarts it from the
newest valid snapshot of the rotation chain after a crash or hang, and
the recovered run must end bit-identical to an uninterrupted one.
Every supervisor log line is deterministic (no pids or timestamps), so
this test pins the exact transcript.

The uninterrupted oracle for everything below:

  $ ../../bin/mp5sim.exe --app flowlet --pipelines 4 --packets 3000 --seed 3 --stream
  4 pipelines, 3000 packets (streamed): throughput 1.000, max queue 2, dropped 0
  digests: exits 132196e5102d98a9, access 0734d2662c118250

--stop-at suspends a checkpointed run mid-flight, flushes a final
snapshot, and exits 4 — the documented "interrupted, resumable" code
(SIGINT/SIGTERM take the same path); --resume then finishes with the
oracle's digests:

  $ ../../bin/mp5sim.exe --app flowlet --pipelines 4 --packets 3000 --seed 3 \
  >   --checkpoint-every 150 --snapshot run.snap --stop-at 600
  mp5sim: interrupted; snapshot flushed to run.snap (resume with --resume run.snap)
  [4]
  $ ../../bin/mp5sim.exe --app flowlet --pipelines 4 --packets 3000 --seed 3 \
  >   --resume run.snap
  4 pipelines, 3000 packets (streamed): throughput 1.000, max queue 2, dropped 0
  digests: exits 132196e5102d98a9, access 0734d2662c118250

--supervise forks each leg and auto-resumes.  --chaos-kill-at is the
testing hook that SIGKILLs the child from inside at given cycles, one
per leg: two scheduled kills mean two restarts with exponential
backoff, each resuming from the newest snapshot — and the same digests
as the oracle:

  $ ../../bin/mp5sim.exe --app flowlet --pipelines 4 --packets 3000 --seed 3 \
  >   --checkpoint-every 150 --snapshot run.snap --supervise \
  >   --chaos-kill-at 300,900 --backoff 0.05 --hang-timeout 2 2>&1
  [supervisor] supervising: snapshot run.snap (keep 2), hang timeout 2s, max restarts 5
  [supervisor] leg 0: fresh start
  [supervisor] leg 0 killed by SIGKILL
  [supervisor] restart 1/5 after 0.05s backoff
  [supervisor] leg 1: resume from run.snap
  [supervisor] leg 1 killed by SIGKILL
  [supervisor] restart 2/5 after 0.1s backoff
  [supervisor] leg 2: resume from run.snap
  4 pipelines, 3000 packets (streamed): throughput 1.000, max queue 2, dropped 0
  digests: exits 132196e5102d98a9, access 0734d2662c118250
  [supervisor] run completed after 2 restarts

When crashes outpace the restart budget the supervisor gives up with
exit 5, keeping the newest snapshot on disk for post-mortem
resumption:

  $ ../../bin/mp5sim.exe --app flowlet --pipelines 4 --packets 3000 --seed 3 \
  >   --checkpoint-every 150 --snapshot give.snap --supervise \
  >   --chaos-kill-at 200,400,600 --max-restarts 2 --backoff 0.02 --hang-timeout 2 2>&1; echo "exit $?"
  [supervisor] supervising: snapshot give.snap (keep 2), hang timeout 2s, max restarts 2
  [supervisor] leg 0: fresh start
  [supervisor] leg 0 killed by SIGKILL
  [supervisor] restart 1/2 after 0.02s backoff
  [supervisor] leg 1: resume from give.snap
  [supervisor] leg 1 killed by SIGKILL
  [supervisor] restart 2/2 after 0.04s backoff
  [supervisor] leg 2: resume from give.snap
  [supervisor] leg 2 killed by SIGKILL
  [supervisor] restart budget exhausted (2): giving up; latest snapshot kept at give.snap
  exit 5
  $ ../../bin/mp5sim.exe --app flowlet --pipelines 4 --packets 3000 --seed 3 \
  >   --resume give.snap
  4 pipelines, 3000 packets (streamed): throughput 1.000, max queue 2, dropped 0
  digests: exits 132196e5102d98a9, access 0734d2662c118250

Checkpoints rotate (--keep-snapshots, default 2), so a newest snapshot
torn by a crash that raced the write falls back one slot instead of
killing the run:

  $ ../../bin/mp5sim.exe --app flowlet --pipelines 4 --packets 3000 --seed 3 \
  >   --checkpoint-every 150 --snapshot torn.snap --stop-at 900 2> /dev/null
  [4]
  $ head -c 100 torn.snap > torn.tmp && mv torn.tmp torn.snap
  $ ../../bin/mp5sim.exe --app flowlet --pipelines 4 --packets 3000 --seed 3 \
  >   --resume torn.snap
  mp5sim: falling back to snapshot torn.snap.1
  4 pipelines, 3000 packets (streamed): throughput 1.000, max queue 2, dropped 0
  digests: exits 132196e5102d98a9, access 0734d2662c118250

Supervision has its own usage contract (exit 1):

  $ ../../bin/mp5sim.exe --app flowlet --supervise
  mp5sim: --supervise requires --checkpoint-every and --snapshot
  [1]
  $ ../../bin/mp5sim.exe --app flowlet --supervise --checkpoint-every 100 \
  >   --snapshot x.snap --resume x.snap
  mp5sim: --supervise resumes from the snapshot rotation chain (drop --resume)
  [1]
  $ ../../bin/mp5sim.exe --app flowlet --supervise --checkpoint-every 100 \
  >   --snapshot x.snap --engine par
  mp5sim: --supervise runs the sequential engine (drop --engine par)
  [1]
  $ ../../bin/mp5sim.exe --app flowlet --stream --keep-snapshots 0
  mp5sim: --keep-snapshots expects a positive count
  [1]

mp5fuzz --chaos-sabotage exercises the failure path of the chaos-soak
harness deterministically (an injected failure, no child processes):
the failing campaigns are delta-debugged to minimal cases and written
as repro artifacts, which --chaos-repro loads and replays:

  $ ../../bin/mp5fuzz.exe --chaos-sabotage --count 2 --chaos-dir sab 2>&1; echo "exit $?"
  [chaos] campaign 1/2: seed=0 k=4 packets=217 ckpt=18 events=4 crashes=[kill@35,torn#3/mid-write,kill@25]
  [chaos] campaign 1 FAILED: injected failure (sabotage hook)
  [chaos] shrunk in 13 probes to seed=0 k=4 packets=16 ckpt=18 events=1 crashes=[kill@25]; repro at sab/chaos-repro-0.txt
  [chaos] campaign 2/2: seed=1 k=4 packets=314 ckpt=13 events=2 crashes=[kill@33]
  [chaos] campaign 2 FAILED: injected failure (sabotage hook)
  [chaos] shrunk in 10 probes to seed=1 k=4 packets=16 ckpt=13 events=1 crashes=[kill@33]; repro at sab/chaos-repro-1.txt
  chaos: 2 campaigns, 4 scheduled crashes (1 torn checkpoints, 0 wedges), 0 restarts, 2 failures
  exit 1
  $ ../../bin/mp5fuzz.exe --chaos-repro sab/chaos-repro-0.txt --chaos-dir sab 2>&1 | tail -1
  recovered bit-identically (0 restarts)
