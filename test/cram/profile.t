--profile attaches the wall-clock span profiler; with no output file
the run prints a one-screen phase report.  Wall-clock numbers vary by
host, so only the report's shape is pinned: sampled mode records the
fused-sweep phases and never the per-phase split (exec) that would
close the fast-loop gate.

  $ ../../bin/mp5sim.exe --app heavy_hitter --pipelines 4 --packets 2000 --seed 3 --profile > out.txt
  $ grep -c '^profile (sampled): wall' out.txt
  1
  $ grep -o '^  deliver' out.txt
    deliver
  $ grep -o '^  sweep' out.txt
    sweep
  $ grep -o '^  source' out.txt
    source
  $ grep -o '^  exec' out.txt
  [1]
  $ grep -c '^  gc:' out.txt
  1

--profile=full routes the run to the generic loop and splits the
per-phase spans:

  $ ../../bin/mp5sim.exe --app heavy_hitter --pipelines 4 --packets 2000 --seed 3 --profile=full > out.txt
  $ grep -c '^profile (full): wall' out.txt
  1
  $ grep -o '^  apply' out.txt
    apply
  $ grep -o '^  pop' out.txt
    pop
  $ grep -o '^  exec' out.txt
    exec
  $ grep -o '^  movement' out.txt
    movement

--profile-out writes a validated mp5-prof/1 snapshot and
--trace-perfetto the Chrome trace-event JSON; both imply --profile
(sampled), and with an output file the report is not printed:

  $ ../../bin/mp5sim.exe --app heavy_hitter --pipelines 4 --packets 2000 --seed 3 \
  >   --profile-out p.json --trace-perfetto p.trace.json > out.txt
  $ grep -c 'profile' out.txt
  0
  [1]
  $ grep -o '"schema": "mp5-prof/1"' p.json
  "schema": "mp5-prof/1"
  $ grep -o '"mode": "sampled"' p.json
  "mode": "sampled"
  $ grep -o '"phase": "sweep"' p.json | sort -u
  "phase": "sweep"
  $ grep -o '"traceEvents"' p.trace.json
  "traceEvents"
  $ grep -o '"name": "thread_name"' p.trace.json | sort -u
  "name": "thread_name"

A profiled parallel run attributes per-domain compute and barrier-wait
spans, one Perfetto track per domain:

  $ ../../bin/mp5sim.exe --app heavy_hitter --pipelines 4 --packets 2000 --seed 3 \
  >   --engine par --jobs 2 --profile-out par.json --trace-perfetto par.trace.json > /dev/null
  $ grep -o '"domains": 2' par.json
  "domains": 2
  $ grep -o '"phase": "compute"' par.json | sort -u
  "phase": "compute"
  $ grep -o '"phase": "barrier"' par.json | sort -u
  "phase": "barrier"
  $ grep -o '"name": "domain 1"' par.trace.json | sort -u
  "name": "domain 1"

Sampled profiling keeps a forced fast loop eligible; full profiling
needs the generic loop's phase structure, so forcing the fast loop is
a usage error (exit 1), and an unknown mode is a CLI parse error:

  $ ../../bin/mp5sim.exe --app heavy_hitter --packets 500 --seed 3 --loop fast --profile > /dev/null
  $ ../../bin/mp5sim.exe --app heavy_hitter --packets 500 --seed 3 --loop fast --profile=full
  mp5sim: Sim: ~loop:Fast requested, but the run is not fast-eligible (instrumentation attached, finite FIFOs, starvation guard, or Ideal mode)
  [1]
  $ ../../bin/mp5sim.exe --app heavy_hitter --packets 500 --seed 3 --profile=bogus 2> /dev/null
  [124]

Streaming runs profile the same way (checkpoint spans land under the
checkpoint phase):

  $ ../../bin/mp5sim.exe --app heavy_hitter --pipelines 4 --packets 2000 --seed 3 \
  >   --stream --checkpoint-every 500 --snapshot s.bin --profile-out stream.json > /dev/null
  $ grep -o '"phase": "checkpoint"' stream.json | sort -u
  "phase": "checkpoint"
