(* Unit tests for the golden single-pipeline machine: sequential semantics,
   arrival ordering, access-sequence recording. *)

module Machine = Mp5_banzai.Machine
module Store = Mp5_banzai.Store

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let compile src = (Mp5_domino.Compile.compile_exn src).Mp5_domino.Compile.config

let counter_config () =
  compile
    {|
struct Packet { int seqno; };
int count;
void func(struct Packet p) {
    count = count + 1;
    p.seqno = count;
}
|}

let test_counter_sequence () =
  let config = counter_config () in
  let trace =
    Array.init 5 (fun i -> { Machine.time = i; port = 0; headers = [| 0 |] })
  in
  let r = Machine.run config trace in
  check_int "final count" 5 (Store.get r.Machine.store ~reg:0 ~idx:0);
  Array.iteri
    (fun i h -> check_int (Printf.sprintf "packet %d seqno" i) (i + 1) h.(0))
    r.Machine.headers_out;
  (match Hashtbl.find_opt r.Machine.access_seqs (0, 0) with
  | Some seq -> Alcotest.(check (list int)) "access order" [ 0; 1; 2; 3; 4 ] seq
  | None -> Alcotest.fail "no access sequence recorded")

let test_sort_trace_by_time_then_port () =
  let mk time port = { Machine.time; port; headers = [||] } in
  let sorted = Machine.sort_trace [| mk 1 0; mk 0 2; mk 0 1; mk 1 1 |] in
  let keys = Array.to_list (Array.map (fun i -> (i.Machine.time, i.Machine.port)) sorted) in
  Alcotest.(check (list (pair int int))) "ordered" [ (0, 1); (0, 2); (1, 0); (1, 1) ] keys

let test_sort_trace_stable () =
  let mk time port h = { Machine.time; port; headers = [| h |] } in
  let sorted = Machine.sort_trace [| mk 0 0 1; mk 0 0 2; mk 0 0 3 |] in
  Alcotest.(check (list int)) "stable for equal keys" [ 1; 2; 3 ]
    (Array.to_list (Array.map (fun i -> i.Machine.headers.(0)) sorted))

let test_figure3_exact () =
  let config = compile Mp5_apps.Sources.figure3 in
  (* A..D: mux=1, h1=1, h3=2; E: mux=0, h2=3, h3=2.  reg1[1]=4, reg2[3]=7.
     reg3[2] starts 0: A..D multiply (0*4=0), E adds 7 -> 7. *)
  let mk h1 h2 h3 mux time port = { Machine.time; port; headers = [| h1; h2; h3; 0; mux |] } in
  let trace =
    [| mk 1 1 2 1 0 1; mk 1 1 2 1 0 2; mk 1 1 2 1 1 1; mk 1 1 2 1 1 2; mk 1 3 2 0 2 1 |]
  in
  let r = Machine.run config trace in
  check_int "reg3[2]" 7 (Store.get r.Machine.store ~reg:2 ~idx:2);
  check_int "A.val = reg1[1]" 4 r.Machine.headers_out.(0).(3);
  check_int "E.val = reg2[3]" 7 r.Machine.headers_out.(4).(3);
  (match Hashtbl.find_opt r.Machine.access_seqs (2, 2) with
  | Some seq -> Alcotest.(check (list int)) "reg3[2] access order" [ 0; 1; 2; 3; 4 ] seq
  | None -> Alcotest.fail "no reg3 accesses");
  (* E accessed reg2, not reg1. *)
  (match Hashtbl.find_opt r.Machine.access_seqs (0, 1) with
  | Some seq -> Alcotest.(check (list int)) "reg1[1] accessed by A..D" [ 0; 1; 2; 3 ] seq
  | None -> Alcotest.fail "no reg1 accesses");
  check "reg2[3] accessed only by E" true (Hashtbl.find_opt r.Machine.access_seqs (1, 3) = Some [ 4 ])

let test_guard_false_no_access () =
  let config =
    compile
      {|
struct Packet { int x; };
int r[4];
void func(struct Packet p) {
    if (p.x > 10) { r[0] = r[0] + 1; }
}
|}
  in
  let trace =
    [|
      { Machine.time = 0; port = 0; headers = [| 5 |] };
      { Machine.time = 1; port = 0; headers = [| 15 |] };
    |]
  in
  let r = Machine.run config trace in
  check_int "only guarded increment" 1 (Store.get r.Machine.store ~reg:0 ~idx:0);
  check "only packet 1 accessed" true (Hashtbl.find_opt r.Machine.access_seqs (0, 0) = Some [ 1 ])

let test_headers_out_user_fields_only () =
  let config = counter_config () in
  let trace = [| { Machine.time = 0; port = 0; headers = [| 0 |] } |] in
  let r = Machine.run config trace in
  check_int "only user fields" 1 (Array.length r.Machine.headers_out.(0))

let test_packet_accesses_recorded () =
  let config = counter_config () in
  let trace = Array.init 3 (fun i -> { Machine.time = i; port = 0; headers = [| 0 |] }) in
  let r = Machine.run config trace in
  (match r.Machine.packet_accesses.(2) with
  | [ a ] ->
      check_int "reg" 0 a.Machine.reg;
      check_int "cell" 0 a.Machine.cell;
      check_int "order" 2 a.Machine.order
  | _ -> Alcotest.fail "expected one access")

let test_run_packet_shared_store () =
  let config = counter_config () in
  let store = Store.create config in
  let fields = Array.make (Array.length config.Mp5_banzai.Config.fields) 0 in
  let hits = ref 0 in
  Machine.run_packet config store ~fields ~on_access:(fun ~reg:_ ~cell:_ -> incr hits);
  Machine.run_packet config store ~fields ~on_access:(fun ~reg:_ ~cell:_ -> incr hits);
  check_int "two accesses" 2 !hits;
  check_int "state persisted" 2 (Store.get store ~reg:0 ~idx:0)

let () =
  Alcotest.run "machine"
    [
      ( "golden",
        [
          Alcotest.test_case "counter sequence" `Quick test_counter_sequence;
          Alcotest.test_case "sort by time then port" `Quick test_sort_trace_by_time_then_port;
          Alcotest.test_case "sort stability" `Quick test_sort_trace_stable;
          Alcotest.test_case "figure 3 exact values" `Quick test_figure3_exact;
          Alcotest.test_case "guard false = no access" `Quick test_guard_false_no_access;
          Alcotest.test_case "headers out are user fields" `Quick test_headers_out_user_fields_only;
          Alcotest.test_case "packet accesses recorded" `Quick test_packet_accesses_recorded;
          Alcotest.test_case "run_packet shares store" `Quick test_run_packet_shared_store;
        ] );
    ]
