(* Cycle-loop variant selection and fast-loop-specific behaviour.

   [Sim.select_loop] is the single decision point for which cycle-loop
   variant a leg runs under; the matrix below pins its whole truth
   table, so a future instrumentation hook that forgets to close the
   fast gate fails here rather than as a silent divergence.  The
   behavioural cases exercise what the differential corpus cannot: a
   forced [~loop:Fast] on an ineligible run must be rejected loudly,
   and the fast loop's whole-machine quiescence jump (which skips idle
   remap boundaries outright) must stay bit-identical to the generic
   loop on a trace with a long arrival gap spanning many boundaries. *)

module Sim = Mp5_core.Sim
module Machine = Mp5_banzai.Machine
module Progen = Mp5_fuzz.Progen
open Mp5_domino

let limits = Progen.limits

let variant =
  Alcotest.testable
    (fun fmt v ->
      Format.pp_print_string fmt
        (match v with
        | `Fast_seq -> "Fast_seq"
        | `Fast_par -> "Fast_par"
        | `Generic_seq -> "Generic_seq"
        | `Generic_par -> "Generic_par"))
    ( = )

let select ?(loop = Sim.Auto) ?(jobs = 1) ?(metrics = false) ?(events = false)
    ?(fault = false) ?(monitor = false) ?(observer = false) ?prof params =
  Sim.select_loop ~loop ~jobs ~metrics ~events ~fault ~monitor ~observer ~prof params

let test_selection_matrix () =
  let p = Sim.default_params ~k:4 in
  let check msg want got = Alcotest.check variant msg want got in
  (* Bare runs take the fast path; a team takes the fast parallel arm. *)
  check "bare seq" `Fast_seq (select p);
  check "bare par" `Fast_par (select ~jobs:4 p);
  (* Every instrumentation hook closes the fast gate on its own.  At
     jobs > 1 the PR 6 generic-parallel gate still admits the pure
     cycle-local observers (metrics, monitor) but not the hooks that
     need the sequential phase order (fault plans, event traces,
     occupancy observers). *)
  check "metrics seq" `Generic_seq (select ~metrics:true p);
  check "metrics par" `Generic_par (select ~jobs:4 ~metrics:true p);
  check "monitor par" `Generic_par (select ~jobs:4 ~monitor:true p);
  check "events" `Generic_seq (select ~jobs:4 ~events:true p);
  check "fault" `Generic_seq (select ~jobs:4 ~fault:true p);
  check "observer" `Generic_seq (select ~jobs:4 ~observer:true p);
  (* Structural exclusions: bounded rings can drop, the starvation
     guard needs the generic bookkeeping, Ideal's per-cell queues are
     not representable in the unwrapped FIFO matrix. *)
  let finite = { p with Sim.adaptive_fifos = false } in
  check "finite fifos seq" `Generic_seq (select finite);
  check "finite fifos par" `Generic_seq (select ~jobs:4 finite);
  let starve = { p with Sim.starvation_threshold = Some 64 } in
  check "starvation guard" `Generic_seq (select starve);
  let ideal = { p with Sim.mode = Sim.Ideal } in
  check "ideal seq" `Generic_seq (select ideal);
  check "ideal par" `Generic_par (select ~jobs:4 ideal);
  (* Profiling: a sampled profiler hooks only at cycle edges the fast
     loops already expose, so it keeps the fast gate open on both arms;
     a full profiler needs the generic loop's phase structure, so Auto
     routes to Generic (and to the parallel generic arm at jobs > 1 —
     the profiler is a pure observer, like metrics). *)
  check "sampled prof seq" `Fast_seq (select ~prof:Mp5_obs.Prof.Sampled p);
  check "sampled prof par" `Fast_par (select ~jobs:4 ~prof:Mp5_obs.Prof.Sampled p);
  check "full prof seq" `Generic_seq (select ~prof:Mp5_obs.Prof.Full p);
  check "full prof par" `Generic_par (select ~jobs:4 ~prof:Mp5_obs.Prof.Full p);
  check "sampled prof + metrics" `Generic_seq
    (select ~metrics:true ~prof:Mp5_obs.Prof.Sampled p);
  (* Forcing the generic loop always honours the request. *)
  check "forced generic" `Generic_seq (select ~loop:Sim.Generic p);
  check "forced generic par" `Generic_par (select ~loop:Sim.Generic ~jobs:4 p);
  (* Forcing the fast loop on an eligible run honours the request;
     forcing it on an ineligible one is a loud contract violation. *)
  check "forced fast" `Fast_seq (select ~loop:Sim.Fast p);
  check "forced fast par" `Fast_par (select ~loop:Sim.Fast ~jobs:4 p);
  check "forced fast + sampled prof" `Fast_seq
    (select ~loop:Sim.Fast ~prof:Mp5_obs.Prof.Sampled p);
  List.iter
    (fun (name, f) ->
      Alcotest.check_raises name
        (Invalid_argument
           "Sim: ~loop:Fast requested, but the run is not fast-eligible (instrumentation \
            attached, finite FIFOs, starvation guard, or Ideal mode)")
        (fun () -> ignore (f ())))
    [
      ("forced fast + metrics", fun () -> select ~loop:Sim.Fast ~metrics:true p);
      ("forced fast + events", fun () -> select ~loop:Sim.Fast ~events:true p);
      ("forced fast + fault", fun () -> select ~loop:Sim.Fast ~fault:true p);
      ("forced fast + monitor", fun () -> select ~loop:Sim.Fast ~monitor:true p);
      ("forced fast + observer", fun () -> select ~loop:Sim.Fast ~observer:true p);
      ( "forced fast + full prof",
        fun () -> select ~loop:Sim.Fast ~prof:Mp5_obs.Prof.Full p );
      ("forced fast + finite fifos", fun () -> select ~loop:Sim.Fast finite);
      ("forced fast + starvation", fun () -> select ~loop:Sim.Fast starve);
      ("forced fast + ideal", fun () -> select ~loop:Sim.Fast ideal);
    ]

(* A forced fast run must also be rejected end-to-end, not only at the
   selector. *)
let test_forced_fast_rejected () =
  let src = Progen.generate 11 in
  let t =
    match Compile.compile ~limits src with
    | Ok t -> t
    | Error _ -> Alcotest.fail "progen seed 11 failed to compile"
  in
  let prog = Mp5_core.Transform.transform ~limits t.Compile.config in
  let k = 4 in
  let trace = Progen.trace ~seed:11 ~k ~n:40 in
  let params = Sim.default_params ~k in
  let stages = Array.length prog.Mp5_core.Transform.config.Mp5_banzai.Config.stages in
  let m = Mp5_obs.Metrics.create ~stages ~k in
  (match Sim.run ~loop:Sim.Fast ~metrics:m params prog trace with
  | _ -> Alcotest.fail "forced fast run with metrics attached was not rejected"
  | exception Invalid_argument _ -> ());
  let pf = Mp5_obs.Prof.create ~mode:Mp5_obs.Prof.Full () in
  (match Sim.run ~loop:Sim.Fast ~prof:pf params prog trace with
  | _ -> Alcotest.fail "forced fast run with a full profiler was not rejected"
  | exception Invalid_argument _ -> ());
  (* ... while a sampled profiler must be admitted under a forced fast
     loop and still produce the bit-identical result. *)
  let ps = Mp5_obs.Prof.create () in
  let profiled = Sim.run ~loop:Sim.Fast ~prof:ps params prog trace in
  let bare = Sim.run ~loop:Sim.Fast params prog trace in
  if not (Sim.results_equal profiled bare) then
    Alcotest.fail "sampled profiling changed a forced-fast result"

(* Quiescence fast-forward: a long arrival gap with everything drained
   crosses hundreds of remap boundaries.  The generic loop visits each
   one; the fast loop jumps straight to the next arrival once the
   access counters are provably clean ([fs_dirty] off).  The results —
   including the remapped store layout and the access log — must be
   bit-identical, or the skip is unsound. *)
let test_quiescence_gap () =
  let run_gap seed =
    let src = Progen.generate seed in
    match Compile.compile ~limits src with
    | Error _ -> () (* progen corpus seeds all compile; stay silent here *)
    | Ok t ->
        let prog = Mp5_core.Transform.transform ~limits t.Compile.config in
        let k = 4 in
        let base = Progen.trace ~seed ~k ~n:80 in
        let n = Array.length base in
        (* Second half of the trace arrives 50k cycles after the first
           half drains: ~500 idle remap boundaries at the default
           period of 100. *)
        let gapped =
          Array.mapi
            (fun i (i0 : Machine.input) ->
              if i < n / 2 then i0 else { i0 with Machine.time = i0.Machine.time + 50_000 })
            base
        in
        let params = Sim.default_params ~k in
        let fast = Sim.run ~loop:Sim.Fast params prog gapped in
        let generic = Sim.run ~loop:Sim.Generic params prog gapped in
        if not (Sim.results_equal fast generic) then
          Alcotest.failf "seed %d: quiescence jump diverges from the generic loop on:\n%s"
            seed src
  in
  List.iter run_gap [ 1; 2; 3; 5; 8 ]

let () =
  Alcotest.run "loops"
    [
      ( "selection",
        [
          Alcotest.test_case "variant matrix" `Quick test_selection_matrix;
          Alcotest.test_case "forced fast rejected end-to-end" `Quick
            test_forced_fast_rejected;
        ] );
      ( "quiescence",
        [ Alcotest.test_case "idle-gap remap skip is bit-identical" `Quick test_quiescence_gap ]
      );
    ]
