(* Unit tests for Banzai atoms: stateless header rewrites and guarded
   stateful read-modify-writes. *)

module Expr = Mp5_banzai.Expr
module Atom = Mp5_banzai.Atom

let check_int = Alcotest.(check int)
let check = Alcotest.(check bool)

let test_stateless_exec () =
  let fields = [| 1; 2; 0 |] in
  let op = Atom.stateless_op ~dst:2 ~rhs:(Expr.Binop (Expr.Add, Expr.Field 0, Expr.Field 1)) in
  Atom.exec_stateless ~tables:[||] ~fields op;
  check_int "dst written" 3 fields.(2)

let test_stateless_rejects_state () =
  Alcotest.check_raises "state_val rejected"
    (Invalid_argument "Atom.stateless_op: rhs uses State_val") (fun () ->
      ignore (Atom.stateless_op ~dst:0 ~rhs:Expr.State_val))

let test_stateful_read () =
  let fields = [| 2; 0 |] in
  let reg_array = [| 10; 20; 30 |] in
  let atom =
    Atom.stateful ~reg:0 ~index:(Expr.Field 0) ~outputs:[ (1, Atom.Old_value) ] ()
  in
  let r = Atom.exec_stateful ~tables:[||] ~fields ~reg_array atom in
  check "accessed" true r.Atom.accessed;
  check_int "cell" 2 r.Atom.cell;
  check_int "old into field" 30 fields.(1);
  check_int "register unchanged" 30 reg_array.(2)

let test_stateful_rmw () =
  let fields = [| 0; 5 |] in
  let reg_array = [| 100 |] in
  let atom =
    Atom.stateful ~reg:0 ~index:(Expr.Const 0)
      ~update:(Expr.Binop (Expr.Add, Expr.State_val, Expr.Field 1))
      ~outputs:[ (0, Atom.New_value) ]
      ()
  in
  let r = Atom.exec_stateful ~tables:[||] ~fields ~reg_array atom in
  check_int "updated" 105 reg_array.(0);
  check_int "new value out" 105 fields.(0);
  check_int "old in result" 100 r.Atom.old_value;
  check_int "new in result" 105 r.Atom.new_value

let test_stateful_guard_false () =
  let fields = [| 0 |] in
  let reg_array = [| 7 |] in
  let atom =
    Atom.stateful ~reg:0 ~index:(Expr.Const 0) ~guard:(Expr.Const 0)
      ~update:(Expr.Const 99) ~outputs:[ (0, Atom.New_value) ] ()
  in
  let r = Atom.exec_stateful ~tables:[||] ~fields ~reg_array atom in
  check "not accessed" false r.Atom.accessed;
  check_int "register untouched" 7 reg_array.(0);
  check_int "field untouched" 0 fields.(0)

let test_stateful_guard_on_fields () =
  let reg_array = [| 1; 1 |] in
  let atom =
    Atom.stateful ~reg:0 ~index:(Expr.Const 0)
      ~guard:(Expr.Binop (Expr.Gt, Expr.Field 0, Expr.Const 5))
      ~update:(Expr.Binop (Expr.Mul, Expr.State_val, Expr.Const 2))
      ()
  in
  ignore (Atom.exec_stateful ~tables:[||] ~fields:[| 6 |] ~reg_array atom);
  check_int "guard true fires" 2 reg_array.(0);
  ignore (Atom.exec_stateful ~tables:[||] ~fields:[| 3 |] ~reg_array atom);
  check_int "guard false skips" 2 reg_array.(0)

let test_index_clamping () =
  let reg_array = [| 0; 0; 0; 0 |] in
  let atom = Atom.stateful ~reg:0 ~index:(Expr.Field 0) ~update:(Expr.Const 1) () in
  ignore (Atom.exec_stateful ~tables:[||] ~fields:[| 6 |] ~reg_array atom);
  check_int "wraps mod size" 1 reg_array.(2);
  ignore (Atom.exec_stateful ~tables:[||] ~fields:[| -1 |] ~reg_array atom);
  check_int "negative wraps into range" 1 reg_array.(3)

let test_resolve_index () =
  let atom = Atom.stateful ~reg:0 ~index:(Expr.Binop (Expr.Add, Expr.Field 0, Expr.Const 1)) () in
  check_int "resolution" 3 (Atom.resolve_index ~tables:[||] ~fields:[| 2 |] ~size:8 atom);
  check_int "resolution wraps" 1 (Atom.resolve_index ~tables:[||] ~fields:[| 8 |] ~size:8 atom)

let test_constructor_validation () =
  Alcotest.check_raises "index uses state"
    (Invalid_argument "Atom.stateful: index uses State_val") (fun () ->
      ignore (Atom.stateful ~reg:0 ~index:Expr.State_val ()));
  Alcotest.check_raises "guard uses state"
    (Invalid_argument "Atom.stateful: guard uses State_val") (fun () ->
      ignore (Atom.stateful ~reg:0 ~index:(Expr.Const 0) ~guard:Expr.State_val ()))

let test_read_only_atom_keeps_value () =
  let reg_array = [| 42 |] in
  let atom = Atom.stateful ~reg:0 ~index:(Expr.Const 0) () in
  let r = Atom.exec_stateful ~tables:[||] ~fields:[||] ~reg_array atom in
  check_int "old = new for read" r.Atom.old_value r.Atom.new_value;
  check_int "unchanged" 42 reg_array.(0)

let test_multiple_outputs () =
  let fields = [| 0; 0 |] in
  let reg_array = [| 10 |] in
  let atom =
    Atom.stateful ~reg:0 ~index:(Expr.Const 0)
      ~update:(Expr.Binop (Expr.Add, Expr.State_val, Expr.Const 1))
      ~outputs:[ (0, Atom.Old_value); (1, Atom.New_value) ]
      ()
  in
  ignore (Atom.exec_stateful ~tables:[||] ~fields ~reg_array atom);
  check_int "old output" 10 fields.(0);
  check_int "new output" 11 fields.(1)

let () =
  Alcotest.run "atom"
    [
      ( "atoms",
        [
          Alcotest.test_case "stateless exec" `Quick test_stateless_exec;
          Alcotest.test_case "stateless rejects state" `Quick test_stateless_rejects_state;
          Alcotest.test_case "stateful read" `Quick test_stateful_read;
          Alcotest.test_case "read-modify-write" `Quick test_stateful_rmw;
          Alcotest.test_case "guard false" `Quick test_stateful_guard_false;
          Alcotest.test_case "guard on fields" `Quick test_stateful_guard_on_fields;
          Alcotest.test_case "index clamping" `Quick test_index_clamping;
          Alcotest.test_case "resolve index" `Quick test_resolve_index;
          Alcotest.test_case "constructor validation" `Quick test_constructor_validation;
          Alcotest.test_case "read-only keeps value" `Quick test_read_only_atom_keeps_value;
          Alcotest.test_case "multiple outputs" `Quick test_multiple_outputs;
        ] );
    ]
