(* Tests for the logical k-ring FIFO: push/insert/pop semantics, phantom
   blocking, cancellation, directory behaviour, growth. *)

module Fifo = Mp5_arch.Fifo
module Channel = Mp5_arch.Channel

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let mk ?(k = 2) ?(capacity = 4) ?(adaptive = false) () = Fifo.create ~k ~capacity ~adaptive

let test_empty () =
  let f : int Fifo.t = mk () in
  check "empty head" true (Fifo.head f = `Empty);
  check_int "length" 0 (Fifo.length f)

let test_phantom_blocks () =
  let f = mk () in
  (match Fifo.push_phantom f ~ring:0 ~ts:1 ~key:1 with `Ok -> () | `Dropped -> Alcotest.fail "dropped");
  (match Fifo.head f with
  | `Blocked 1 -> ()
  | _ -> Alcotest.fail "expected blocked head");
  (* Insert the data; the head becomes ready. *)
  (match Fifo.insert_data f ~key:1 100 with `Ok -> () | `No_phantom -> Alcotest.fail "miss");
  (match Fifo.head f with
  | `Data (1, 100) -> ()
  | _ -> Alcotest.fail "expected ready data");
  check_int "pop" 100 (Fifo.pop_data f);
  check "empty after" true (Fifo.head f = `Empty)

let test_pop_min_timestamp_across_rings () =
  let f = mk () in
  ignore (Fifo.push_phantom f ~ring:0 ~ts:5 ~key:5);
  ignore (Fifo.push_phantom f ~ring:1 ~ts:3 ~key:3);
  ignore (Fifo.insert_data f ~key:5 50);
  ignore (Fifo.insert_data f ~key:3 30);
  check_int "smaller ts first" 30 (Fifo.pop_data f);
  check_int "then larger" 50 (Fifo.pop_data f)

let test_phantom_blocks_other_rings () =
  (* A phantom with the smallest timestamp blocks ready data in other
     rings: that is exactly D4's order enforcement. *)
  let f = mk () in
  ignore (Fifo.push_phantom f ~ring:0 ~ts:1 ~key:1);
  ignore (Fifo.push_phantom f ~ring:1 ~ts:2 ~key:2);
  ignore (Fifo.insert_data f ~key:2 20);
  (match Fifo.head f with
  | `Blocked 1 -> ()
  | _ -> Alcotest.fail "phantom must block later data");
  ignore (Fifo.insert_data f ~key:1 10);
  check_int "order restored" 10 (Fifo.pop_data f);
  check_int "then second" 20 (Fifo.pop_data f)

let test_insert_miss_after_drop () =
  let f = mk ~capacity:1 () in
  ignore (Fifo.push_phantom f ~ring:0 ~ts:1 ~key:1);
  (match Fifo.push_phantom f ~ring:0 ~ts:2 ~key:2 with
  | `Dropped -> ()
  | `Ok -> Alcotest.fail "expected drop at capacity");
  (* The dropped phantom's data packet finds no placeholder. *)
  check "insert misses" true (Fifo.insert_data f ~key:2 99 = `No_phantom)

let test_adaptive_growth () =
  let f = mk ~capacity:1 ~adaptive:true () in
  ignore (Fifo.push_phantom f ~ring:0 ~ts:1 ~key:1);
  (match Fifo.push_phantom f ~ring:0 ~ts:2 ~key:2 with
  | `Ok -> ()
  | `Dropped -> Alcotest.fail "adaptive ring must grow");
  check_int "both queued" 2 (Fifo.length f)

let test_cancel () =
  let f = mk () in
  ignore (Fifo.push_phantom f ~ring:0 ~ts:1 ~key:1);
  ignore (Fifo.push_phantom f ~ring:0 ~ts:2 ~key:2);
  ignore (Fifo.insert_data f ~key:2 20);
  Fifo.cancel f ~key:1;
  (* The cancelled phantom is purged for free; key 2 surfaces. *)
  (match Fifo.head f with
  | `Data (2, 20) -> ()
  | _ -> Alcotest.fail "cancelled phantom should be skipped");
  check_int "pop" 20 (Fifo.pop_data f)

let test_cancel_unknown_is_noop () =
  let f : int Fifo.t = mk () in
  Fifo.cancel f ~key:42;
  check "still empty" true (Fifo.head f = `Empty)

let test_cancelled_blocks_insert () =
  let f = mk () in
  ignore (Fifo.push_phantom f ~ring:0 ~ts:1 ~key:1);
  Fifo.cancel f ~key:1;
  check "insert on cancelled misses" true (Fifo.insert_data f ~key:1 5 = `No_phantom)

let test_push_data_direct () =
  let f = mk () in
  ignore (Fifo.push_data f ~ring:0 ~ts:2 ~key:2 22);
  ignore (Fifo.push_data f ~ring:1 ~ts:1 ~key:1 11);
  check_int "min ts" 11 (Fifo.pop_data f);
  check_int "next" 22 (Fifo.pop_data f)

let test_data_length_and_high_water () =
  let f = mk () in
  ignore (Fifo.push_phantom f ~ring:0 ~ts:1 ~key:1);
  check_int "phantoms are not data" 0 (Fifo.data_length f);
  ignore (Fifo.insert_data f ~key:1 10);
  ignore (Fifo.push_data f ~ring:1 ~ts:2 ~key:2 20);
  check_int "two data" 2 (Fifo.data_length f);
  check_int "high water" 2 (Fifo.max_occupancy f);
  ignore (Fifo.pop_data f);
  ignore (Fifo.pop_data f);
  check_int "drained" 0 (Fifo.data_length f);
  check_int "high water sticks" 2 (Fifo.max_occupancy f)

let test_fifo_order_within_ring () =
  let f = mk ~capacity:8 () in
  for i = 1 to 5 do
    ignore (Fifo.push_phantom f ~ring:0 ~ts:i ~key:i)
  done;
  for i = 5 downto 1 do
    ignore (Fifo.insert_data f ~key:i (i * 10))
  done;
  for i = 1 to 5 do
    check_int "in ts order" (i * 10) (Fifo.pop_data f)
  done

let test_pop_on_phantom_raises () =
  let f : int Fifo.t = mk () in
  ignore (Fifo.push_phantom f ~ring:0 ~ts:1 ~key:1);
  Alcotest.check_raises "pop phantom" (Invalid_argument "Fifo.pop_data: head is a phantom")
    (fun () -> ignore (Fifo.pop_data f))

(* --- phantom channel --- *)

let test_channel_delivery () =
  let ch = Channel.create () in
  Channel.schedule ch ~at:5 "a";
  Channel.schedule ch ~at:5 "b";
  Channel.schedule ch ~at:7 "c";
  check_int "pending" 3 (Channel.pending ch);
  Alcotest.(check (list string)) "in order" [ "a"; "b" ] (Channel.due ch ~now:5);
  Alcotest.(check (list string)) "nothing at 6" [] (Channel.due ch ~now:6);
  Alcotest.(check (list string)) "late one" [ "c" ] (Channel.due ch ~now:7);
  check_int "drained" 0 (Channel.pending ch)

let test_channel_due_removes () =
  let ch = Channel.create () in
  Channel.schedule ch ~at:1 42;
  ignore (Channel.due ch ~now:1);
  Alcotest.(check (list int)) "removed" [] (Channel.due ch ~now:1)

let () =
  Alcotest.run "fifo"
    [
      ( "fifo",
        [
          Alcotest.test_case "empty" `Quick test_empty;
          Alcotest.test_case "phantom blocks until insert" `Quick test_phantom_blocks;
          Alcotest.test_case "pop picks min timestamp" `Quick test_pop_min_timestamp_across_rings;
          Alcotest.test_case "phantom blocks other rings" `Quick test_phantom_blocks_other_rings;
          Alcotest.test_case "insert misses after drop" `Quick test_insert_miss_after_drop;
          Alcotest.test_case "adaptive growth" `Quick test_adaptive_growth;
          Alcotest.test_case "cancel" `Quick test_cancel;
          Alcotest.test_case "cancel unknown" `Quick test_cancel_unknown_is_noop;
          Alcotest.test_case "cancelled blocks insert" `Quick test_cancelled_blocks_insert;
          Alcotest.test_case "push data direct" `Quick test_push_data_direct;
          Alcotest.test_case "data length / high water" `Quick test_data_length_and_high_water;
          Alcotest.test_case "order within ring" `Quick test_fifo_order_within_ring;
          Alcotest.test_case "pop on phantom raises" `Quick test_pop_on_phantom_raises;
        ] );
      ( "channel",
        [
          Alcotest.test_case "delivery" `Quick test_channel_delivery;
          Alcotest.test_case "due removes" `Quick test_channel_due_removes;
        ] );
    ]
