(* Differential fuzzing of the two simulator execution engines.

   For a few hundred random Domino programs (lib/fuzz/progen), the MP5
   simulator is run twice on the same trace — once with the compiled
   closure kernels (the default) and once with the AST interpreter
   (~compiled:false) — and the results must agree on every observable
   field ([Sim.results_equal]: stores, headers, access sequences, exit
   order, latencies, counters).  This is the enforcement half of the
   bit-identical guarantee documented in Sim.run.

   Each seed is additionally replayed under the domain-parallel cycle
   engine (a [Pool.Team] of 1/2/4/8 members, cycling across the corpus)
   and must be bit-identical to the sequential run — results, telemetry,
   streaming digests, and snapshots taken under one engine and resumed
   under the other.  The bare fast cycle loop (both arms, forced with
   [~loop:Fast]) is held to the same standard: array and streamed runs,
   every job count, and resumes that switch loop variants mid-run.

   Both execution engines are additionally checked against the independent
   reference interpreter (lib/fuzz/interp), which executes the untyped
   AST directly with C semantics and knows nothing about stages, kernels
   or pipelines: final register state and per-packet output headers must
   match it exactly. *)

module Store = Mp5_banzai.Store
module Sim = Mp5_core.Sim
module Pool = Mp5_util.Pool
open Mp5_domino
module Progen = Mp5_fuzz.Progen
module Interp = Mp5_fuzz.Interp

let limits = Progen.limits
let n_programs = 220
let n_packets = 100

(* One persistent team per job count, shared across the whole corpus so
   the 220 seeds pay domain spawn once, not 220 times.  [Team.create]
   registers an [at_exit] shutdown hook. *)
let teams = lazy (Array.map (fun jobs -> Pool.Team.create ~jobs) [| 1; 2; 4; 8 |])

let compile_gen seed =
  let src = Progen.generate seed in
  match Compile.compile ~limits src with
  | Ok t -> (src, t)
  | Error e ->
      Alcotest.failf "seed %d: generated program failed to compile:\n%s\n%a" seed src
        Compile.pp_error e

let check_oracle ~seed ~src ~engine (r : Sim.result)
    (ref_regs : int array array) (ref_headers : int array array) =
  Array.iteri
    (fun reg arr ->
      Array.iteri
        (fun idx v ->
          let got = Store.get r.Sim.store ~reg ~idx in
          if got <> v then
            Alcotest.failf "seed %d (%s engine): program:\n%s\nreg %d[%d]: oracle %d, sim %d"
              seed engine src reg idx v got)
        arr)
    ref_regs;
  List.iter
    (fun (pid, h) ->
      if h <> ref_headers.(pid) then
        Alcotest.failf "seed %d (%s engine): program:\n%s\npacket %d headers differ from oracle"
          seed engine src pid)
    r.Sim.headers_out

let run_seed seed =
  let src, t = compile_gen seed in
  let prog = Mp5_core.Transform.transform ~limits t.Compile.config in
  let k = 2 + (seed mod 3) in
  let trace = Progen.trace ~seed ~k ~n:n_packets in
  let params = Sim.default_params ~k in
  (* Both engines run instrumented: telemetry is a pure observer, so the
     results must still match the oracle, and the two engines must emit
     counter-for-counter and event-for-event identical telemetry. *)
  let stages = Array.length prog.Mp5_core.Transform.config.Mp5_banzai.Config.stages in
  let mk = Mp5_obs.Metrics.create ~stages ~k in
  let mi = Mp5_obs.Metrics.create ~stages ~k in
  let tk = Mp5_obs.Trace.create () in
  let ti = Mp5_obs.Trace.create () in
  let kernel = Sim.run ~compiled:true ~metrics:mk ~events:tk params prog trace in
  let interp = Sim.run ~compiled:false ~metrics:mi ~events:ti params prog trace in
  if not (Sim.results_equal kernel interp) then
    Alcotest.failf "seed %d: kernel and interpreter engines diverge on:\n%s" seed src;
  (* Parallel cycle engine: a team of any size must be bit-identical to
     the sequential engine — result and telemetry both.  Job counts
     cycle through {1,2,4,8} across the corpus, and the engine choice is
     orthogonal to the kernel/interpreter choice, so that alternates
     too. *)
  let team = (Lazy.force teams).(seed mod 4) in
  let jobs = Pool.Team.size team in
  let mp = Mp5_obs.Metrics.create ~stages ~k in
  let par = Sim.run ~team ~compiled:(seed mod 2 = 0) ~metrics:mp params prog trace in
  if not (Sim.results_equal kernel par) then
    Alcotest.failf "seed %d: parallel engine (jobs=%d) diverges on:\n%s" seed jobs src;
  if not (Mp5_obs.Metrics.equal mk mp) then
    Alcotest.failf "seed %d: parallel engine (jobs=%d) telemetry diverges on:\n%s" seed jobs
      src;
  (* The bare fast loop (forced, both arms) must be bit-identical to the
     instrumented generic runs above: telemetry is a pure observer, so
     stripping it — and fusing the cycle phases — may change nothing
     observable.  The team cycles jobs through {1,2,4,8} across the
     corpus, so both fast arms and every job count see all 220
     programs. *)
  let fast = Sim.run ~loop:Sim.Fast ~compiled:true params prog trace in
  if not (Sim.results_equal kernel fast) then
    Alcotest.failf "seed %d: fast sequential loop diverges on:\n%s" seed src;
  let fastp = Sim.run ~team ~loop:Sim.Fast ~compiled:(seed mod 2 = 1) params prog trace in
  if not (Sim.results_equal kernel fastp) then
    Alcotest.failf "seed %d: fast parallel loop (jobs=%d) diverges on:\n%s" seed jobs src;
  (* The span profiler is a pure observer on host wall time: sampled
     profiling keeps the fast loops (both arms, every job count via the
     cycling team) and full profiling routes to the generic loops, and
     neither may perturb a single observable bit. *)
  let prof_sampled = Mp5_obs.Prof.create () in
  let profs =
    Sim.run ~loop:Sim.Fast ~prof:prof_sampled ~compiled:true params prog trace
  in
  if not (Sim.results_equal kernel profs) then
    Alcotest.failf "seed %d: sampled profiling changes the fast sequential run on:\n%s" seed
      src;
  let profp =
    Sim.run ~team ~loop:Sim.Fast ~prof:(Mp5_obs.Prof.create ()) ~compiled:true params prog
      trace
  in
  if not (Sim.results_equal kernel profp) then
    Alcotest.failf "seed %d: sampled profiling changes the fast parallel run (jobs=%d) on:\n%s"
      seed jobs src;
  let prof_full = Mp5_obs.Prof.create ~mode:Mp5_obs.Prof.Full () in
  let proff = Sim.run ~team ~prof:prof_full ~compiled:true params prog trace in
  if not (Sim.results_equal kernel proff) then
    Alcotest.failf "seed %d: full profiling changes the generic run (jobs=%d) on:\n%s" seed
      jobs src;
  (* An empty fault plan plus an attached invariant monitor must be
     invisible: the fault hooks' no-plan path is bit-identical to an
     unfaulted build, and the monitor is a pure observer.  An empty plan
     does not close the parallel gate, so attaching the team here also
     exercises the cycle-barrier conservation check
     ([Monitor.barrier]). *)
  let mon = Mp5_fault.Monitor.create () in
  let faulted =
    Sim.run ~team ~compiled:true ~fault:Mp5_fault.Fault.empty ~monitor:mon params prog
      trace
  in
  if not (Sim.results_equal kernel faulted) then
    Alcotest.failf "seed %d: empty fault plan + monitor changes the result on:\n%s" seed src;
  if not (Mp5_fault.Monitor.ok mon) then
    Alcotest.failf "seed %d: monitor violation on an unfaulted run:\n%s\n%s" seed src
      (Mp5_fault.Monitor.summary mon);
  (* A non-empty plan closes the gate: the run falls back to the
     sequential engine automatically, and a team must not change the
     faulted results. *)
  if seed mod 7 = 0 then begin
    let plan =
      {
        Mp5_fault.Fault.seed = (7 * seed) + 1;
        events = [ Mp5_fault.Fault.window ~from_:5 ~until_:60 (Mp5_fault.Fault.Xbar_drop 0.25) ];
      }
    in
    let fs = Sim.run ~compiled:true ~fault:plan params prog trace in
    let fp = Sim.run ~team ~compiled:true ~fault:plan params prog trace in
    if not (Sim.results_equal fs fp) then
      Alcotest.failf "seed %d: faulted fallback (jobs=%d) diverges on:\n%s" seed jobs src
  end;
  (match Mp5_obs.Metrics.validate mk with
  | Ok () -> ()
  | Error e -> Alcotest.failf "seed %d: telemetry invariant violated: %s\nprogram:\n%s" seed e src);
  if not (Mp5_obs.Metrics.equal mk mi) then
    Alcotest.failf "seed %d: kernel and interpreter telemetry diverge on:\n%s" seed src;
  if Mp5_obs.Trace.to_jsonl tk <> Mp5_obs.Trace.to_jsonl ti then
    Alcotest.failf "seed %d: kernel and interpreter event traces diverge on:\n%s" seed src;
  (* Streaming parity: the same packets pulled from a source one at a
     time must be bit-identical to the array run on both engines — every
     counter, the merged store, and the exit/access digests
     ([Sim.digests_of_result] condenses the array run's per-packet lists
     into the digests the streaming path maintains online). *)
  let stream ?team ?loop ~compiled () =
    match
      Sim.run_source ?team ?loop ~compiled params prog
        (Mp5_workload.Packet_source.of_array trace)
    with
    | Sim.Completed s -> s
    | Sim.Suspended _ -> Alcotest.failf "seed %d: streamed run suspended without a budget" seed
  in
  let want = Sim.summary_of_result ~packets:(Array.length trace) kernel in
  if not (Sim.summary_equal want (stream ~compiled:true ())) then
    Alcotest.failf "seed %d: streamed source diverges from the array run (kernel):\n%s" seed
      src;
  if not (Sim.summary_equal want (stream ~compiled:false ())) then
    Alcotest.failf "seed %d: streamed source diverges from the array run (interp):\n%s" seed
      src;
  if not (Sim.summary_equal want (stream ~team ~compiled:true ())) then
    Alcotest.failf "seed %d: streamed source diverges from the array run (par jobs=%d):\n%s"
      seed jobs src;
  (* Streamed fast loop: exercises chunked source admission (no
     checkpointing armed, so the prefetch buffer is live) and the
     streaming exit/access digests under the fused sweep. *)
  if not (Sim.summary_equal want (stream ~loop:Sim.Fast ~compiled:true ())) then
    Alcotest.failf "seed %d: streamed fast loop diverges from the array run:\n%s" seed src;
  if not (Sim.summary_equal want (stream ~team ~loop:Sim.Fast ~compiled:true ())) then
    Alcotest.failf "seed %d: streamed fast parallel loop diverges (jobs=%d):\n%s" seed jobs
      src;
  (* Cross-engine checkpoint/resume on a corpus slice: a snapshot taken
     under either engine must resume under the other and land on the
     uninterrupted run's summary — snapshots record no engine choice. *)
  if seed mod 23 = 0 then begin
    let cross ?l1 ?l2 t1 t2 =
      match
        Sim.run_source ?team:t1 ?loop:l1 ~cycle_budget:25 params prog
          (Mp5_workload.Packet_source.of_array trace)
      with
      | Sim.Completed s -> s (* finished inside the budget; nothing to cross *)
      | Sim.Suspended snap -> (
          match
            Sim.resume ?team:t2 ?loop:l2 ~snapshot:snap prog
              (Mp5_workload.Packet_source.of_array trace)
          with
          | Ok (Sim.Completed s) -> s
          | Ok (Sim.Suspended _) ->
              Alcotest.failf "seed %d: resume suspended without a budget" seed
          | Error _ -> Alcotest.failf "seed %d: cross-engine resume rejected" seed)
    in
    if not (Sim.summary_equal want (cross (Some team) None)) then
      Alcotest.failf "seed %d: par checkpoint -> seq resume diverges (jobs=%d):\n%s" seed
        jobs src;
    if not (Sim.summary_equal want (cross None (Some team))) then
      Alcotest.failf "seed %d: seq checkpoint -> par resume diverges (jobs=%d):\n%s" seed
        jobs src;
    (* Snapshots record no loop-variant choice either: a leg suspended
       under one cycle-loop variant must resume under the other and land
       on the uninterrupted summary. *)
    if not (Sim.summary_equal want (cross ~l1:Sim.Fast ~l2:Sim.Generic None None)) then
      Alcotest.failf "seed %d: fast checkpoint -> generic resume diverges:\n%s" seed src;
    if not (Sim.summary_equal want (cross ~l1:Sim.Generic ~l2:Sim.Fast None None)) then
      Alcotest.failf "seed %d: generic checkpoint -> fast resume diverges:\n%s" seed src
  end;
  if kernel.Sim.dropped = 0 then begin
    (* the oracle has no drop model, so only compare complete deliveries *)
    let ref_regs, ref_headers = Interp.interp t.Compile.env trace in
    check_oracle ~seed ~src ~engine:"kernel" kernel ref_regs ref_headers;
    check_oracle ~seed ~src ~engine:"interp" interp ref_regs ref_headers
  end

let test_engines_agree () =
  let oracle_checked = ref 0 in
  for seed = 0 to n_programs - 1 do
    run_seed seed;
    incr oracle_checked
  done;
  Alcotest.(check bool) "ran all seeds" true (!oracle_checked = n_programs)

let () =
  Alcotest.run "differential"
    [
      ( "engines",
        [ Alcotest.test_case "kernel = interpreter = parallel = oracle (220 programs)" `Quick
            test_engines_agree ] );
    ]
