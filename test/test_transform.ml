(* Tests for the PVSM-to-PVSM transformer: resolution classification,
   serialization, pinning, stage padding. *)

module Config = Mp5_banzai.Config
module Capability = Mp5_banzai.Capability
module Transform = Mp5_core.Transform
open Mp5_domino

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let transform ?limits ?pad_to_stages src =
  let t = Compile.compile_exn ?limits src in
  (Transform.transform ?limits ?pad_to_stages t.Compile.config, t)

let wrap body =
  Printf.sprintf
    "struct Packet { int x; int y; };\nint r[8];\nint s[8];\nvoid func(struct Packet p) { %s }"
    body

let test_resolution_stage_prepended () =
  let prog, t = transform (wrap "r[p.x % 8] = r[p.x % 8] + 1;") in
  check_int "one extra stage" (Array.length t.Compile.config.Config.stages + 1)
    (Array.length prog.Transform.config.Config.stages);
  check "stage 0 empty" true
    (prog.Transform.config.Config.stages.(0).Config.atoms = []
    && prog.Transform.config.Config.stages.(0).Config.stateless = []);
  check "access points into shifted stage" true
    (Array.for_all (fun (a : Transform.access) -> a.Transform.stage >= 1) prog.Transform.accesses)

let test_resolved_guard_and_index () =
  let prog, _ = transform (wrap "if (p.y > 2) { r[p.x % 8] = 1; }") in
  match prog.Transform.accesses with
  | [| a |] ->
      check "guard resolved" true
        (match a.Transform.guard with Transform.G_resolved _ -> true | _ -> false);
      check "index resolved" true
        (match a.Transform.index with Transform.I_resolved _ -> true | _ -> false);
      check "sharded" true prog.Transform.sharded.(a.Transform.reg)
  | _ -> Alcotest.fail "expected one access"

let test_always_guard () =
  let prog, _ = transform (wrap "r[0] = r[0] + 1;") in
  check "G_always" true
    (match prog.Transform.accesses.(0).Transform.guard with
    | Transform.G_always -> true
    | _ -> false)

let test_unresolvable_guard () =
  let prog, t = transform Mp5_apps.Sources.ddos_unresolvable_pred in
  let blocked = Hashtbl.find t.Compile.env.Typecheck.reg_index "blocked" in
  let acc =
    Array.to_list prog.Transform.accesses
    |> List.find (fun (a : Transform.access) -> a.Transform.reg = blocked)
  in
  check "blocked guard unresolvable" true (acc.Transform.guard = Transform.G_unresolved);
  check "blocked still sharded (index is resolvable)" true prog.Transform.sharded.(blocked)

let test_unresolvable_index_pins_array () =
  let prog, t = transform Mp5_apps.Sources.pointer_chase_unresolvable_idx in
  let data = Hashtbl.find t.Compile.env.Typecheck.reg_index "data" in
  let indirection = Hashtbl.find t.Compile.env.Typecheck.reg_index "indirection" in
  check "data pinned" false prog.Transform.sharded.(data);
  check "indirection sharded" true prog.Transform.sharded.(indirection);
  let acc =
    Array.to_list prog.Transform.accesses
    |> List.find (fun (a : Transform.access) -> a.Transform.reg = data)
  in
  check "I_unresolved" true (acc.Transform.index = Transform.I_unresolved)

let test_serialization_splits_multi_array_stage () =
  (* Two independent arrays land in the same PVSM stage; the transformer
     must serialize them into consecutive stages when the budget allows. *)
  let prog, _ = transform (wrap "r[p.x % 8] = r[p.x % 8] + 1; s[p.y % 8] = s[p.y % 8] + 1;") in
  Array.iter
    (fun (st : Config.stage) ->
      check "at most one array per stage" true (List.length (Config.regs_of_stage st) <= 1))
    prog.Transform.config.Config.stages;
  check "both sharded" true (Array.for_all Fun.id prog.Transform.sharded)

let test_no_budget_pins_stage () =
  (* With a 3-stage machine there is no room to serialize (2 atom stages
     + resolution); the arrays must be pinned instead. *)
  let limits = { Capability.default with Capability.max_stages = 2 } in
  let prog, _ =
    transform ~limits (wrap "r[p.x % 8] = r[p.x % 8] + 1; s[p.y % 8] = s[p.y % 8] + 1;")
  in
  check "arrays pinned" true (Array.for_all not prog.Transform.sharded);
  check "some stage flagged pinned" true (Array.exists Fun.id prog.Transform.pinned_stage)

let test_figure3_exclusive_stage () =
  let prog, t = transform Mp5_apps.Sources.figure3 in
  ignore t;
  (* reg1 and reg2 have complementary guards (the two arms of the mux
     ternary), so they share a stage — a packet accesses at most one of
     them, which is all D2's independent sharding needs. *)
  let multi =
    Array.to_list prog.Transform.config.Config.stages
    |> List.filter (fun (st : Config.stage) -> List.length (Config.regs_of_stage st) = 2)
  in
  check_int "reg1/reg2 share one stage" 1 (List.length multi);
  check "not pinned" true (Array.for_all (fun p -> not p) prog.Transform.pinned_stage);
  check "all sharded" true (Array.for_all Fun.id prog.Transform.sharded);
  check_int "three accesses" 3 (Array.length prog.Transform.accesses)

let test_accesses_by_stage () =
  let prog, _ = transform (wrap "r[p.x % 8] = r[p.x % 8] + 1; s[p.y % 8] = s[p.y % 8] + 1;") in
  let by_stage = Transform.accesses_by_stage prog in
  let total = Array.fold_left (fun acc l -> acc + List.length l) 0 by_stage in
  check_int "all accesses assigned" (Array.length prog.Transform.accesses) total;
  Array.iteri
    (fun stage accs ->
      List.iter (fun (a : Transform.access) -> check_int "stage matches" stage a.Transform.stage) accs)
    by_stage

let test_pad_to_stages () =
  let prog, _ = transform ~pad_to_stages:16 (wrap "r[0] = r[0] + 1;") in
  check_int "padded" 16 (Array.length prog.Transform.config.Config.stages);
  check "padding stages empty" true
    (prog.Transform.config.Config.stages.(15).Config.atoms = []);
  (* Padding never truncates. *)
  let prog2, _ = transform ~pad_to_stages:1 (wrap "r[0] = r[0] + 1;") in
  check "no truncation" true (Array.length prog2.Transform.config.Config.stages >= 2)

let test_transformed_config_validates () =
  List.iter
    (fun (name, src) ->
      let prog, _ = transform src in
      match Config.validate prog.Transform.config with
      | Ok () -> ()
      | Error m -> Alcotest.failf "%s: %s" name m)
    Mp5_apps.Sources.all_named

let test_acc_ids_dense_and_ordered () =
  let prog, _ = transform Mp5_apps.Sources.conga in
  Array.iteri
    (fun i (a : Transform.access) -> check_int "dense ids" i a.Transform.acc_id)
    prog.Transform.accesses;
  let stages = Array.map (fun (a : Transform.access) -> a.Transform.stage) prog.Transform.accesses in
  let sorted = Array.copy stages in
  Array.sort compare sorted;
  check "stage order" true (stages = sorted)

let () =
  Alcotest.run "transform"
    [
      ( "transform",
        [
          Alcotest.test_case "resolution stage prepended" `Quick test_resolution_stage_prepended;
          Alcotest.test_case "resolved guard and index" `Quick test_resolved_guard_and_index;
          Alcotest.test_case "always guard" `Quick test_always_guard;
          Alcotest.test_case "unresolvable guard" `Quick test_unresolvable_guard;
          Alcotest.test_case "unresolvable index pins" `Quick test_unresolvable_index_pins_array;
          Alcotest.test_case "serialization" `Quick test_serialization_splits_multi_array_stage;
          Alcotest.test_case "budget exhausted pins" `Quick test_no_budget_pins_stage;
          Alcotest.test_case "figure 3 exclusive stage" `Quick test_figure3_exclusive_stage;
          Alcotest.test_case "accesses_by_stage" `Quick test_accesses_by_stage;
          Alcotest.test_case "pad_to_stages" `Quick test_pad_to_stages;
          Alcotest.test_case "transformed configs validate" `Quick
            test_transformed_config_validates;
          Alcotest.test_case "access ids dense" `Quick test_acc_ids_dense_and_ordered;
        ] );
    ]
